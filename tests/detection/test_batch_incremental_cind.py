"""Tests for batch (merged-tableau) detection, incremental detection and CINDs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.cfd import CFD
from repro.constraints.cind import CIND
from repro.constraints.parse import parse_cfd, parse_cind
from repro.detection.batch import BatchCFDDetector
from repro.detection.cfd_detect import CFDDetector
from repro.detection.cind_detect import CINDDetector, detect_cind_violations
from repro.detection.incremental import IncrementalCFDDetector
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import NULL


CUSTOMER_SCHEMA = RelationSchema("customer", [
    Attribute("cc"), Attribute("ac"), Attribute("phn"),
    Attribute("city"), Attribute("zip"), Attribute("street"),
])

ROWS = [
    {"cc": "44", "ac": "131", "phn": "1111", "city": "edi", "zip": "EH8", "street": "mayfield"},
    {"cc": "44", "ac": "131", "phn": "2222", "city": "edi", "zip": "EH8", "street": "mayfield"},
    {"cc": "44", "ac": "131", "phn": "3333", "city": "ldn", "zip": "EH8", "street": "crichton"},
    {"cc": "01", "ac": "908", "phn": "4444", "city": "mh", "zip": "07974", "street": "mtn ave"},
    {"cc": "01", "ac": "908", "phn": "4444", "city": "nyc", "zip": "07974", "street": "mtn ave"},
]


@pytest.fixture
def customer():
    return Relation.from_dicts(CUSTOMER_SCHEMA, ROWS)


CFDS = [
    parse_cfd("customer([cc='44', zip] -> [street])"),
    parse_cfd("customer([cc='01', zip] -> [street])"),
    parse_cfd("customer([cc='01', ac='908', phn] -> [city='mh'])"),
]


class TestBatchDetection:
    def test_merging_reduces_cfd_count(self, customer):
        detector = BatchCFDDetector(customer, CFDS)
        assert len(detector.merged_cfds) == 2

    def test_batch_equals_naive_on_violating_tuples(self, customer):
        detector = BatchCFDDetector(customer, CFDS)
        assert detector.violating_tids_agree()

    def test_batch_equals_plain_detector(self, customer):
        batch = BatchCFDDetector(customer, CFDS).detect()
        plain = CFDDetector(customer, CFDS).detect()
        assert batch.violating_tids() == plain.violating_tids()

    def test_batch_on_clean_relation(self, customer):
        clean_cfd = parse_cfd("customer([cc='86', zip] -> [street])")
        assert BatchCFDDetector(customer, [clean_cfd]).detect().is_clean()

    values = st.sampled_from(["a", "b"])
    rows = st.lists(st.tuples(values, values, values), max_size=30)

    @given(rows)
    @settings(max_examples=25, deadline=None)
    def test_batch_and_naive_agree_randomized(self, data):
        schema = RelationSchema("r", [Attribute("x"), Attribute("y"), Attribute("z")])
        relation = Relation.from_rows(schema, data)
        cfds = [
            CFD.single("r", ["x"], ["y"], {"x": "a"}),
            CFD.single("r", ["x"], ["y"], {"x": "b"}),
            CFD.single("r", ["x"], ["z"]),
        ]
        detector = BatchCFDDetector(relation, cfds)
        assert detector.detect().violating_tids() == detector.detect_naive().violating_tids()


class TestIncrementalDetection:
    def test_initial_state_matches_full_detection(self, customer):
        incremental = IncrementalCFDDetector(customer, CFDS)
        assert incremental.current_report().violating_tids() == \
            incremental.recompute_full().violating_tids()

    def test_insert_reports_new_violation(self, customer):
        incremental = IncrementalCFDDetector(customer, CFDS)
        new = incremental.insert_tuple(
            {"cc": "44", "ac": "131", "phn": "7777", "city": "gla", "zip": "G1", "street": "a"})
        assert new == []  # first G1 tuple cannot violate
        new = incremental.insert_tuple(
            {"cc": "44", "ac": "131", "phn": "8888", "city": "gla", "zip": "G1", "street": "b"})
        assert len(new) == 1 and len(new[0].tids) == 2

    def test_insert_single_tuple_violation(self, customer):
        incremental = IncrementalCFDDetector(customer, CFDS)
        new = incremental.insert_tuple(
            {"cc": "01", "ac": "908", "phn": "9999", "city": "boston", "zip": "02134",
             "street": "elm"})
        assert any(v.is_single_tuple for v in new)

    def test_delete_removes_violation(self, customer):
        incremental = IncrementalCFDDetector(customer, CFDS)
        removed = incremental.delete_tuple(2)  # the crichton tuple
        assert removed
        report = incremental.current_report()
        assert 2 not in report.violating_tids()

    def test_update_cell_creates_and_clears_violations(self, customer):
        incremental = IncrementalCFDDetector(customer, CFDS)
        incremental.update_cell(2, "street", "mayfield")
        remaining = {tuple(sorted(v.tids)) for v in incremental.current_report()
                     if not v.is_single_tuple}
        assert (0, 1, 2) not in remaining

    def test_incremental_stays_consistent_with_full(self, customer):
        incremental = IncrementalCFDDetector(customer, CFDS)
        incremental.insert_tuple(
            {"cc": "44", "ac": "131", "phn": "7777", "city": "gla", "zip": "EH8", "street": "zzz"})
        incremental.delete_tuple(0)
        incremental.update_cell(4, "city", "mh")
        assert incremental.current_report().violating_tids() == \
            incremental.recompute_full().violating_tids()

    moves = st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                               st.sampled_from(["a", "b", "c"])), min_size=1, max_size=25)

    @given(moves)
    @settings(max_examples=25, deadline=None)
    def test_random_insert_sequence_matches_full(self, pairs):
        schema = RelationSchema("r", [Attribute("x"), Attribute("y")])
        relation = Relation(schema)
        incremental = IncrementalCFDDetector(relation, [CFD.single("r", ["x"], ["y"])])
        for x, y in pairs:
            incremental.insert_tuple({"x": x, "y": y})
        assert incremental.current_report().violating_tids() == \
            incremental.recompute_full().violating_tids()


class TestCINDDetection:
    @pytest.fixture
    def database(self):
        db = Database()
        cd_schema = RelationSchema("cd", [Attribute("album"), Attribute("price"), Attribute("genre")])
        book_schema = RelationSchema("book", [Attribute("title"), Attribute("price"), Attribute("format")])
        db.create_from_dicts(cd_schema, [
            {"album": "war and peace", "price": "20", "genre": "a-book"},
            {"album": "abbey road", "price": "15", "genre": "rock"},
            {"album": "hamlet", "price": "10", "genre": "a-book"},
            {"album": NULL, "price": "5", "genre": "a-book"},
        ])
        db.create_from_dicts(book_schema, [
            {"title": "war and peace", "price": "20", "format": "audio"},
            {"title": "hamlet", "price": "10", "format": "hardcover"},
        ])
        return db

    CIND = parse_cind(
        "cd(album, price; genre='a-book') SUBSET book(title, price; format='audio')")

    def test_violations_found(self, database):
        report = detect_cind_violations(database, [self.CIND])
        tids = {v.tid for v in report.cind_violations()}
        # hamlet (wrong format) and the NULL-album audio book violate; war and
        # peace is fine; abbey road is not constrained.
        assert tids == {2, 3}

    def test_rhs_pattern_must_hold_on_partner(self, database):
        relaxed = parse_cind("cd(album, price; genre='a-book') SUBSET book(title, price)")
        report = detect_cind_violations(database, [relaxed])
        assert {v.tid for v in report.cind_violations()} == {3}

    def test_clean_database(self, database):
        cind = parse_cind("cd(album; genre='classical') SUBSET book(title)")
        assert detect_cind_violations(database, [cind]).is_clean()

    def test_reference_sql_mentions_not_exists(self, database):
        detector = CINDDetector(database, [self.CIND])
        sql = detector.reference_sql(self.CIND)
        assert "NOT EXISTS" in sql and "format" in sql

    def test_report_cells(self, database):
        report = detect_cind_violations(database, [self.CIND])
        assert (2, "album") in report.dirty_cells()

    def test_multiple_cinds(self, database):
        other = parse_cind("cd(price; genre='rock') SUBSET book(price)")
        report = detect_cind_violations(database, [self.CIND, other])
        assert len(report.count_by_constraint()) == 2
