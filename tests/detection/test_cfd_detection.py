"""Tests for direct and SQL-based CFD violation detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.cfd import CFD
from repro.constraints.parse import parse_cfd
from repro.detection.cfd_detect import CFDDetector, SQLCFDDetector, detect_cfd_violations
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import NULL


CUSTOMER_SCHEMA = RelationSchema("customer", [
    Attribute("cc"), Attribute("ac"), Attribute("phn"),
    Attribute("city"), Attribute("zip"), Attribute("street"),
])

ROWS = [
    {"cc": "44", "ac": "131", "phn": "1111", "city": "edi", "zip": "EH8", "street": "mayfield"},
    {"cc": "44", "ac": "131", "phn": "2222", "city": "edi", "zip": "EH8", "street": "mayfield"},
    {"cc": "44", "ac": "131", "phn": "3333", "city": "ldn", "zip": "EH8", "street": "crichton"},
    {"cc": "01", "ac": "908", "phn": "4444", "city": "mh", "zip": "07974", "street": "mtn ave"},
    {"cc": "01", "ac": "908", "phn": "4444", "city": "nyc", "zip": "07974", "street": "mtn ave"},
    {"cc": "01", "ac": "212", "phn": "5555", "city": "nyc", "zip": "10012", "street": "bway"},
]


@pytest.fixture
def customer():
    return Relation.from_dicts(CUSTOMER_SCHEMA, ROWS)


@pytest.fixture
def database(customer):
    db = Database()
    db.add(customer)
    return db


UK_CFD = parse_cfd("customer([cc='44', zip] -> [street])")
US_CFD = parse_cfd("customer([cc='01', ac='908', phn] -> [street, city='mh', zip])")


class TestDirectDetection:
    def test_uk_rule_group_violation(self, customer):
        report = detect_cfd_violations(customer, [UK_CFD])
        assert len(report) == 1
        violation = report.violations[0]
        assert violation.is_pair and set(violation.tids) == {0, 1, 2}

    def test_us_rule_single_tuple_violation(self, customer):
        report = detect_cfd_violations(customer, [US_CFD])
        singles = report.single_tuple_violations()
        # tuple 4 has city nyc but the pattern demands mh -> single-tuple violation
        assert {v.tids[0] for v in singles} == {4}
        # tuples 3 and 4 agree on the variable RHS attributes (street, zip), so
        # no additional group violation is reported (the constant attribute
        # city is covered by the single-tuple check, as in Fan et al.'s Q1/Q2).
        assert report.pair_violations() == []
        assert report.violating_tids() == {4}

    def test_clean_relation(self, customer):
        cfd = parse_cfd("customer([cc='86', zip] -> [street])")
        assert detect_cfd_violations(customer, [cfd]).is_clean()

    def test_wildcard_fd_detection(self, customer):
        cfd = CFD.single("customer", ["zip"], ["city"])
        report = detect_cfd_violations(customer, [cfd])
        keys = {tuple(sorted(v.tids)) for v in report}
        assert keys == {(0, 1, 2), (3, 4)}

    def test_null_lhs_groups_are_skipped(self, customer):
        customer.insert_dict({"cc": "44", "zip": NULL, "street": "x"})
        customer.insert_dict({"cc": "44", "zip": NULL, "street": "y"})
        report = detect_cfd_violations(customer, [UK_CFD])
        assert all(NULL not in
                   [customer.tuple(t)["zip"] for t in v.tids] for v in report)

    def test_null_rhs_counts_as_disagreement(self, customer):
        tid = customer.insert_dict({"cc": "44", "zip": "G1", "street": "high st"})
        customer.insert_dict({"cc": "44", "zip": "G1", "street": NULL})
        report = detect_cfd_violations(customer, [UK_CFD])
        assert any(tid in v.tids for v in report)

    def test_enumerate_pairs_mode(self, customer):
        report = detect_cfd_violations(customer, [UK_CFD], enumerate_pairs=True)
        # group {0,1} vs {2}: pairs (0,2) and (1,2)
        assert {v.tids for v in report} == {(0, 2), (1, 2)}

    def test_multiple_cfds_accumulate(self, customer):
        report = detect_cfd_violations(customer, [UK_CFD, US_CFD])
        assert len(report) == 2
        assert report.violating_tids() == {0, 1, 2, 4}

    def test_report_summary_and_cells(self, customer):
        report = detect_cfd_violations(customer, [US_CFD])
        assert "single-tuple" in report.summary()
        cells = report.dirty_cells()
        assert (4, "city") in cells

    def test_unknown_attribute_rejected(self, customer):
        bad = CFD.single("customer", ["country"], ["city"])
        with pytest.raises(Exception):
            CFDDetector(customer, [bad])

    def test_detector_reuses_index_across_patterns(self, customer):
        merged = UK_CFD.merge_with(parse_cfd("customer([cc='01', zip] -> [street])"))
        report = CFDDetector(customer, [merged]).detect()
        assert len(report) == 1


class TestSQLDetection:
    def test_generated_queries_shape(self, database):
        detector = SQLCFDDetector(database, [US_CFD])
        queries = detector.generated_queries()
        assert len(queries) == 2
        assert any("GROUP BY" in q for q in queries)
        assert any("<>" in q for q in queries)

    def test_single_query_only_for_constant_rhs(self, database):
        detector = SQLCFDDetector(database, [UK_CFD])
        queries = detector.generated_queries()
        assert len(queries) == 1 and "GROUP BY" in queries[0]

    def test_sql_matches_direct_detection(self, database, customer):
        for cfds in ([UK_CFD], [US_CFD], [UK_CFD, US_CFD]):
            direct = CFDDetector(customer, cfds).detect()
            via_sql = SQLCFDDetector(database, cfds).detect()
            assert direct.violating_tids() == via_sql.violating_tids()
            assert len(direct.single_tuple_violations()) == len(via_sql.single_tuple_violations())

    def test_sql_detection_on_clean_data(self, database):
        cfd = parse_cfd("customer([cc='86', zip] -> [street])")
        assert SQLCFDDetector(database, [cfd]).detect().is_clean()


class TestDetectionProperties:
    """Randomized equivalence between the direct and SQL detection paths."""

    values = st.sampled_from(["a", "b", "c"])
    rows = st.lists(st.tuples(values, values, values), min_size=0, max_size=40)

    @given(rows)
    @settings(max_examples=30, deadline=None)
    def test_direct_and_sql_agree(self, data):
        schema = RelationSchema("r", [Attribute("x"), Attribute("y"), Attribute("z")])
        relation = Relation.from_rows(schema, data)
        db = Database()
        db.add(relation)
        cfds = [
            CFD.single("r", ["x"], ["y"]),
            CFD.single("r", ["x"], ["z"], {"x": "a", "z": "c"}),
        ]
        direct = CFDDetector(relation, cfds).detect()
        via_sql = SQLCFDDetector(db, cfds).detect()
        assert direct.violating_tids() == via_sql.violating_tids()

    @given(rows)
    @settings(max_examples=30, deadline=None)
    def test_violation_free_iff_fd_holds(self, data):
        schema = RelationSchema("r", [Attribute("x"), Attribute("y"), Attribute("z")])
        relation = Relation.from_rows(schema, data)
        cfd = CFD.single("r", ["x"], ["y"])
        report = detect_cfd_violations(relation, [cfd])
        groups = {}
        for x, y, _ in data:
            groups.setdefault(x, set()).add(y)
        clean = all(len(ys) == 1 for ys in groups.values())
        assert report.is_clean() == clean
