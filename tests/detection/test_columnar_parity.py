"""Parity tests: the columnar detection paths must reproduce the row paths.

Two families:

* **byte-identical reports** — on the seed datagen datasets, columnar
  CFD/CIND/batch detection must return the *same violations in the same
  order* as the row-at-a-time implementations (``use_columns=False``);
* **randomized equivalence** — under a random stream of inserts, deletes
  and cell updates, :class:`IncrementalCFDDetector` must maintain exactly
  the report a full re-detection would produce.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.cfd import CFD
from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.datagen.orders import OrdersGenerator
from repro.detection.batch import BatchCFDDetector
from repro.detection.cfd_detect import CFDDetector
from repro.detection.cind_detect import CINDDetector
from repro.detection.incremental import IncrementalCFDDetector
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema


def report_fingerprint(report):
    """The full observable content of a report, order included."""
    return [(v.cfd, v.pattern, v.tids) for v in report]


def noisy_customer(size, seed=101, rate=0.08):
    generator = CustomerGenerator(seed=seed)
    clean = generator.generate(size)
    dirty = inject_noise(clean, rate=rate,
                         attributes=["street", "city"], seed=size).dirty
    return dirty, generator.canonical_cfds()


class TestColumnarCFDParity:
    @pytest.mark.parametrize("size", [120, 500])
    def test_detector_reports_are_byte_identical(self, size):
        relation, cfds = noisy_customer(size)
        columnar = CFDDetector(relation, cfds).detect()
        rows = CFDDetector(relation, cfds, use_columns=False).detect()
        assert report_fingerprint(columnar) == report_fingerprint(rows)
        assert columnar.summary() == rows.summary()
        assert not columnar.is_clean()

    def test_enumerate_pairs_parity(self):
        relation, cfds = noisy_customer(150)
        columnar = CFDDetector(relation, cfds, enumerate_pairs=True).detect()
        rows = CFDDetector(relation, cfds, enumerate_pairs=True,
                           use_columns=False).detect()
        assert report_fingerprint(columnar) == report_fingerprint(rows)

    def test_batch_detector_parity(self):
        relation, cfds = noisy_customer(300)
        columnar = BatchCFDDetector(relation, cfds).detect()
        rows = BatchCFDDetector(relation, cfds, use_columns=False).detect()
        assert report_fingerprint(columnar) == report_fingerprint(rows)
        assert BatchCFDDetector(relation, cfds).violating_tids_agree()

    def test_parity_with_nulls_and_numeric_patterns(self):
        schema = RelationSchema("r", [
            Attribute("x"), Attribute("y"), Attribute("z"),
        ])
        relation = Relation.from_rows(schema, [
            ("1", "a", "p"), ("1", "a", "q"), ("1", "b", "p"),
            (None, "a", "p"), ("2", None, "p"), ("2", "c", "p"), ("2", "c", "q"),
        ])
        cfds = [
            CFD.single("r", ["x"], ["y"]),
            CFD.single("r", ["x"], ["z"], {"x": 1}),          # int constant vs str data
            CFD.single("r", ["x"], ["y"], {"x": "2", "y": "c"}),
        ]
        columnar = CFDDetector(relation, cfds).detect()
        rows = CFDDetector(relation, cfds, use_columns=False).detect()
        assert report_fingerprint(columnar) == report_fingerprint(rows)

    def test_detection_after_mutations_stays_in_parity(self):
        relation, cfds = noisy_customer(100)
        _ = relation.columns  # force the store to exist before the mutations
        tids = relation.tids()
        relation.delete(tids[3])
        relation.update(tids[10], "city", "mos")
        relation.insert_dict({a: "zz" for a in relation.schema.attribute_names})
        columnar = CFDDetector(relation, cfds).detect()
        rows = CFDDetector(relation, cfds, use_columns=False).detect()
        assert report_fingerprint(columnar) == report_fingerprint(rows)


class TestColumnarCINDParity:
    def test_orders_database_parity(self):
        database, expected = OrdersGenerator(seed=7).generate(400, violation_rate=0.1)
        cind = OrdersGenerator.canonical_cind()
        columnar = CINDDetector(database, [cind]).detect()
        rows = CINDDetector(database, [cind], use_columns=False).detect()
        assert [v.tid for v in columnar.cind_violations()] == \
            [v.tid for v in rows.cind_violations()]
        assert len(columnar.cind_violations()) == expected


SCHEMA = RelationSchema("r", [Attribute("x"), Attribute("y"), Attribute("z")])
CFDS = [
    CFD.single("r", ["x"], ["y"]),
    CFD.single("r", ["x"], ["z"], {"x": "a", "z": "p"}),
    CFD.single("r", ["x", "y"], ["z"], {"x": "b"}),
]

values = st.sampled_from(["a", "b", "c"])
operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), values, values, values),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=60)),
        st.tuples(st.just("update"), st.integers(min_value=0, max_value=60),
                  st.sampled_from(["x", "y", "z"]), values),
    ),
    min_size=1, max_size=40,
)


class TestIncrementalEquivalence:
    @given(operations)
    @settings(max_examples=40, deadline=None)
    def test_random_stream_matches_full_detection(self, ops):
        relation = Relation(SCHEMA)
        incremental = IncrementalCFDDetector(relation, CFDS)
        for op in ops:
            if op[0] == "insert":
                incremental.insert_tuple({"x": op[1], "y": op[2], "z": op[3]})
            elif op[0] == "delete":
                live = relation.tids()
                if live:
                    incremental.delete_tuple(live[op[1] % len(live)])
            else:
                live = relation.tids()
                if live:
                    incremental.update_cell(live[op[1] % len(live)], op[2], op[3])
        maintained = Counter(report_fingerprint(incremental.current_report()))
        # full detection over the merged CFDs (what the detector maintains)
        full = Counter(report_fingerprint(
            BatchCFDDetector(relation, incremental._merged).detect()))
        assert maintained == full

    def test_stream_on_seed_dataset(self):
        relation, cfds = noisy_customer(80)
        incremental = IncrementalCFDDetector(relation, cfds)
        incremental.insert_tuple({"cc": "44", "ac": "131", "phn": "1", "name": "n",
                                  "street": "s1", "city": "edi", "zip": "EH8"})
        incremental.insert_tuple({"cc": "44", "ac": "131", "phn": "2", "name": "n",
                                  "street": "s2", "city": "gla", "zip": "EH8"})
        incremental.delete_tuple(relation.tids()[0])
        incremental.update_cell(relation.tids()[5], "city", "unknown")
        maintained = Counter(report_fingerprint(incremental.current_report()))
        full = Counter(report_fingerprint(
            BatchCFDDetector(relation, incremental._merged).detect()))
        assert maintained == full
