"""Tests for partitions, FD discovery, itemset mining and CFD discovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.fd import FunctionalDependency
from repro.datagen.customer import CustomerGenerator
from repro.detection.cfd_detect import detect_cfd_violations
from repro.discovery.cfd_discovery import CFDDiscovery, discover_cfds, discover_constant_cfds
from repro.discovery.fd_discovery import FDDiscovery, discover_fds
from repro.discovery.itemsets import ItemsetMiner
from repro.discovery.partitions import partition_of
from repro.errors import DiscoveryError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema


@pytest.fixture
def simple():
    schema = RelationSchema("r", [Attribute("a"), Attribute("b"), Attribute("c")])
    return Relation.from_dicts(schema, [
        {"a": "1", "b": "x", "c": "p"},
        {"a": "1", "b": "x", "c": "p"},
        {"a": "2", "b": "y", "c": "p"},
        {"a": "3", "b": "y", "c": "q"},
    ])


class TestPartitions:
    def test_group_structure(self, simple):
        partition = partition_of(simple, ["a"])
        assert partition.group_count == 1  # only a=1 has more than one tuple
        assert partition.error == 1

    def test_key_has_zero_error(self, simple):
        assert partition_of(simple, ["a", "c"]).error in (0, 1)
        assert partition_of(simple, ["a", "b", "c"]).error == 1  # duplicate tuple

    def test_refinement_detects_fd(self, simple):
        coarse = partition_of(simple, ["a"])
        fine = partition_of(simple, ["a", "b"])
        assert coarse.refines_without_splitting(fine)  # a -> b holds
        fine_c = partition_of(simple, ["b", "c"])
        assert not partition_of(simple, ["b"]).refines_without_splitting(fine_c)

    def test_product_matches_direct_partition(self, simple):
        left = partition_of(simple, ["a"])
        right = partition_of(simple, ["b"])
        product = left.product(right)
        direct = partition_of(simple, ["a", "b"])
        assert product.error == direct.error


class TestFDDiscovery:
    def test_discovers_expected_fds(self, simple):
        fds = discover_fds(simple, max_lhs_size=2)
        assert FunctionalDependency("r", ["a"], ["b"]) in fds
        assert FunctionalDependency("r", ["a"], ["c"]) in fds
        assert FunctionalDependency("r", ["b"], ["a"]) not in fds

    def test_minimality(self, simple):
        fds = discover_fds(simple, max_lhs_size=2)
        # a -> b is found, so (a, c) -> b must not be reported
        assert FunctionalDependency("r", ["a", "c"], ["b"]) not in fds

    def test_discovered_fds_hold(self, simple):
        for fd in discover_fds(simple, max_lhs_size=2):
            assert fd.holds_on(simple)

    def test_keys(self, simple):
        discovery = FDDiscovery(simple, max_lhs_size=2)
        keys = discovery.keys()
        assert all(isinstance(k, tuple) for k in keys)

    def test_empty_relation(self):
        schema = RelationSchema("r", [Attribute("a"), Attribute("b")])
        assert discover_fds(Relation(schema)) == []

    def test_bad_parameters(self, simple):
        with pytest.raises(DiscoveryError):
            FDDiscovery(simple, max_lhs_size=0)
        with pytest.raises(DiscoveryError):
            FDDiscovery(simple, approximate_error=1.5)

    def test_approximate_fd(self, simple):
        simple.insert_dict({"a": "1", "b": "z", "c": "p"})  # breaks a -> b once
        exact = discover_fds(simple, max_lhs_size=1)
        approximate = discover_fds(simple, max_lhs_size=1, approximate_error=0.25)
        assert FunctionalDependency("r", ["a"], ["b"]) not in exact
        assert FunctionalDependency("r", ["a"], ["b"]) in approximate

    @given(st.lists(st.tuples(st.sampled_from("abc"), st.sampled_from("xy")),
                    min_size=1, max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_discovered_fds_always_hold(self, rows):
        schema = RelationSchema("r", [Attribute("p"), Attribute("q")])
        relation = Relation.from_rows(schema, rows)
        for fd in discover_fds(relation, max_lhs_size=1):
            assert fd.holds_on(relation)


class TestItemsetMiner:
    def test_supports(self, simple):
        miner = ItemsetMiner(simple, min_support=2, max_size=2)
        assert miner.support_of([("a", "1")]) == 2
        assert miner.support_of([("a", "1"), ("b", "x")]) == 2
        assert miner.support_of([("a", "1"), ("b", "y")]) == 0

    def test_frequent_itemsets(self, simple):
        miner = ItemsetMiner(simple, min_support=2, max_size=2)
        itemsets = {frozenset(i.items) for i in miner.frequent_itemsets()}
        assert frozenset({("c", "p")}) in itemsets
        assert frozenset({("a", "1"), ("b", "x")}) in itemsets

    def test_closure(self, simple):
        miner = ItemsetMiner(simple, min_support=1, max_size=2)
        closure = miner.closure_of([("a", "1")])
        assert ("b", "x") in closure and ("c", "p") in closure

    def test_free_itemsets(self, simple):
        miner = ItemsetMiner(simple, min_support=2, max_size=2)
        free = {frozenset(i.items) for i in miner.free_itemsets()}
        # {a=1, b=x} has the same support as {a=1}, hence it is not free
        assert frozenset({("a", "1"), ("b", "x")}) not in free
        assert frozenset({("a", "1")}) in free

    def test_bad_parameters(self, simple):
        with pytest.raises(DiscoveryError):
            ItemsetMiner(simple, min_support=0)
        with pytest.raises(DiscoveryError):
            ItemsetMiner(simple, max_size=0)

    def test_closure_rejects_stale_snapshot(self, simple):
        miner = ItemsetMiner(simple, min_support=2, max_size=2)
        miner.closure_of([("a", "1")])  # fresh: fine
        simple.delete(simple.tids()[0])
        with pytest.raises(DiscoveryError):
            miner.closure_of([("a", "1")])


class TestCFDDiscovery:
    def test_constant_cfds_hold_on_data(self, simple):
        for cfd in discover_constant_cfds(simple, min_support=2, max_lhs_size=2):
            assert detect_cfd_violations(simple, [cfd]).is_clean()

    def test_constant_cfd_example(self, simple):
        cfds = discover_constant_cfds(simple, min_support=2, max_lhs_size=1)
        rendered = {repr(cfd) for cfd in cfds}
        assert any("a='1'" in text and "b" in text for text in rendered)

    def test_variable_cfds_hold_on_data(self):
        generator = CustomerGenerator(seed=21)
        relation = generator.generate(150)
        discovery = CFDDiscovery(relation, min_support=5, max_lhs_size=2)
        for cfd in discovery.discover_variable_cfds()[:20]:
            assert detect_cfd_violations(relation, [cfd]).is_clean()

    def test_discovery_on_customer_data_finds_zip_street_rule(self):
        generator = CustomerGenerator(seed=21)
        relation = generator.generate(200)
        cfds = discover_cfds(relation, min_support=5, max_lhs_size=2)
        assert any(set(cfd.lhs) <= {"cc", "zip", "ac"} and "street" in cfd.rhs
                   for cfd in cfds)

    def test_support_threshold_reduces_output(self):
        generator = CustomerGenerator(seed=21)
        relation = generator.generate(200)
        low = len(discover_constant_cfds(relation, min_support=3, max_lhs_size=1))
        high = len(discover_constant_cfds(relation, min_support=40, max_lhs_size=1))
        assert high <= low

    def test_bad_parameters(self, simple):
        with pytest.raises(DiscoveryError):
            CFDDiscovery(simple, min_support=0)
        with pytest.raises(DiscoveryError):
            CFDDiscovery(simple, max_lhs_size=0)
