"""Randomized parity: columnar discovery is identical to the string path.

Discovery runs on dictionary codes and stripped array-backed partitions by
default; ``use_columns=False`` keeps the historical row/string
implementation.  These tests pin down that both paths — and the chunked
serial/parallel engines, for every chunk size and worker count tried —
produce *identical* output lists (FDs, keys, itemsets, constant and
variable CFDs, names and order included), on randomized relations with
NULLs and duplicates, and after interleaved insert/delete/update streams.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.customer import CustomerGenerator
from repro.discovery.cfd_discovery import CFDDiscovery
from repro.discovery.fd_discovery import FDDiscovery
from repro.discovery.itemsets import ItemsetMiner
from repro.discovery.partitions import partition_of
from repro.engine.discover import ChunkedPartitionEngine
from repro.engine.executor import SerialPool
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import NULL

SCHEMA = RelationSchema("r", [Attribute("a"), Attribute("b"),
                              Attribute("c"), Attribute("d")])


def random_relation(seed: int, size: int = 60, null_rate: float = 0.15) -> Relation:
    rng = random.Random(seed)
    relation = Relation(SCHEMA)
    for _ in range(size):
        relation.insert([
            NULL if rng.random() < null_rate else rng.choice("xyz"),
            NULL if rng.random() < null_rate else str(rng.randrange(4)),
            NULL if rng.random() < null_rate else rng.choice(("p", "q")),
            NULL if rng.random() < null_rate else str(rng.randrange(3)),
        ])
    return relation


def mutate(relation: Relation, seed: int, steps: int = 25) -> None:
    rng = random.Random(seed)
    for _ in range(steps):
        action = rng.random()
        tids = relation.tids()
        if action < 0.4 or not tids:
            relation.insert([rng.choice("xyz"), str(rng.randrange(4)),
                             rng.choice(("p", "q")), str(rng.randrange(3))])
        elif action < 0.7:
            relation.delete(rng.choice(tids))
        else:
            relation.update(rng.choice(tids), rng.choice("abcd"),
                            NULL if rng.random() < 0.2 else rng.choice("xyz"))


def assert_discovery_identical(relation: Relation, **code_kwargs) -> None:
    """FDs, keys, itemsets and CFDs equal between code and string paths."""
    reference_fd = FDDiscovery(relation, max_lhs_size=2, use_columns=False)
    code_fd = FDDiscovery(relation, max_lhs_size=2, **code_kwargs)
    assert code_fd.discover() == reference_fd.discover()
    assert code_fd.keys() == reference_fd.keys()

    reference_miner = ItemsetMiner(relation, min_support=2, max_size=2,
                                   use_columns=False)
    code_miner = ItemsetMiner(relation, min_support=2, max_size=2)
    assert code_miner.frequent_itemsets() == reference_miner.frequent_itemsets()
    assert code_miner.free_itemsets() == reference_miner.free_itemsets()

    reference = CFDDiscovery(relation, min_support=2, max_lhs_size=2,
                             use_columns=False)
    code = CFDDiscovery(relation, min_support=2, max_lhs_size=2, **code_kwargs)
    assert ([repr(c) for c in code.discover()]
            == [repr(c) for c in reference.discover()])


class TestPathParity:
    @pytest.mark.parametrize("seed", [1, 7, 23, 91])
    def test_randomized_relations(self, seed):
        assert_discovery_identical(random_relation(seed))

    @pytest.mark.parametrize("seed", [5, 17])
    def test_after_interleaved_mutations(self, seed):
        relation = random_relation(seed)
        relation.columns  # build the store early so the hooks maintain it
        mutate(relation, seed + 1)
        assert_discovery_identical(relation)

    def test_customer_workload(self):
        relation = CustomerGenerator(seed=33).generate(150)
        strings = CFDDiscovery(relation, min_support=5, max_lhs_size=2,
                               use_columns=False).discover()
        code = CFDDiscovery(relation, min_support=5, max_lhs_size=2).discover()
        assert [repr(c) for c in code] == [repr(c) for c in strings]

    @given(st.lists(st.tuples(st.sampled_from("abc"), st.sampled_from("xy"),
                              st.sampled_from("pq"), st.sampled_from("01")),
                    min_size=1, max_size=30))
    @settings(max_examples=20, deadline=None)
    def test_hypothesis_fd_and_key_parity(self, rows):
        relation = Relation.from_rows(SCHEMA, rows)
        reference = FDDiscovery(relation, max_lhs_size=3, use_columns=False)
        code = FDDiscovery(relation, max_lhs_size=3)
        assert code.discover() == reference.discover()
        assert code.keys() == reference.keys()


class TestEngineParity:
    @pytest.mark.parametrize("engine,workers", [("serial", None), ("parallel", 2)])
    def test_chunked_engines(self, engine, workers):
        relation = random_relation(41, size=80)
        assert_discovery_identical(relation, engine=engine, workers=workers)

    @pytest.mark.parametrize("chunk_size", [1, 2, 7, 1000])
    def test_chunk_boundaries(self, chunk_size):
        relation = random_relation(13, size=50)
        mutate(relation, 14)
        engine = ChunkedPartitionEngine(relation, SerialPool(chunk_size=chunk_size))
        for attributes in (["a"], ["a", "c"], ["a", "b", "d"]):
            merged = [g for g in engine.groups_of(attributes) if len(g) > 1]
            direct = partition_of(relation, attributes)
            assert merged == direct.groups  # same groups, same order, same tids

    def test_parallel_engine_across_real_processes(self, monkeypatch):
        # force the multiprocessing backend to actually cross process
        # boundaries on a small workload
        monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "0")
        relation = random_relation(59, size=40)
        reference = CFDDiscovery(relation, min_support=2, max_lhs_size=2,
                                 use_columns=False).discover()
        parallel = CFDDiscovery(relation, min_support=2, max_lhs_size=2,
                                engine="parallel", workers=2).discover()
        assert [repr(c) for c in parallel] == [repr(c) for c in reference]

    def test_mutation_between_discoveries_rebroadcasts(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "0")
        relation = random_relation(67, size=40)
        discovery = FDDiscovery(relation, max_lhs_size=2,
                                engine="parallel", workers=2)
        first = discovery.discover()
        assert first == FDDiscovery(relation, max_lhs_size=2,
                                    use_columns=False).discover()
        mutate(relation, 68, steps=15)
        second = discovery.discover()
        assert second == FDDiscovery(relation, max_lhs_size=2,
                                     use_columns=False).discover()


class TestRefineOffload:
    """Variable-CFD refinement rides the worker pool when an engine is set."""

    def test_refine_subset_checks_go_through_the_pool(self, monkeypatch):
        relation = random_relation(23, size=60)
        discovery = CFDDiscovery(relation, min_support=2, max_lhs_size=2,
                                 engine="serial")
        chunked = discovery._provider.chunked
        assert chunked is not None
        calls = []
        original = ChunkedPartitionEngine.refine_subsets

        def spy(self, lhs_attributes, rhs_attribute, groups):
            calls.append(len(groups))
            return original(self, lhs_attributes, rhs_attribute, groups)

        monkeypatch.setattr(ChunkedPartitionEngine, "refine_subsets", spy)
        offloaded = discovery.discover_variable_cfds()
        assert calls  # the subset checks actually went through the engine
        reference = CFDDiscovery(relation, min_support=2, max_lhs_size=2,
                                 use_columns=False).discover_variable_cfds()
        assert [repr(c) for c in offloaded] == [repr(c) for c in reference]

    def test_sequential_discovery_has_no_chunked_engine(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        relation = random_relation(23, size=20)
        discovery = CFDDiscovery(relation, min_support=2, max_lhs_size=2)
        assert discovery._provider.chunked is None
