"""Unit tests for stripped partitions, the partition cache and the provider."""

import pytest

from repro.discovery.partitions import (
    Partition,
    PartitionProvider,
    partition_cache,
    partition_of,
)
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import NULL

SCHEMA = RelationSchema("r", [Attribute("a"), Attribute("b"), Attribute("c")])


@pytest.fixture
def relation():
    return Relation.from_rows(SCHEMA, [
        ("1", "x", "p"),
        ("1", "x", "p"),
        ("2", "y", "p"),
        ("3", "y", "q"),
        ("1", "z", "q"),
    ])


class TestStrippedRepresentation:
    def test_groups_are_tid_arrays(self, relation):
        partition = partition_of(relation, ["a"])
        assert partition.groups == [[0, 1, 4]]  # a='1'; singletons stripped
        assert partition.group_count == 1
        assert partition.error == 2

    def test_group_ids_cover_stripped_tids_only(self, relation):
        partition = partition_of(relation, ["b"])
        ids = partition.group_ids()
        assert ids == {0: 0, 1: 0, 2: 1, 3: 1}  # b='x' and b='y'; 'z' is a singleton
        assert partition.group_ids() is ids  # built once, cached

    def test_refinement_via_group_id_map(self, relation):
        coarse = partition_of(relation, ["a"])
        fine = partition_of(relation, ["a", "b"])
        assert not coarse.refines_without_splitting(fine)  # a='1' splits on b
        coarse_b = partition_of(relation, ["b"])
        fine_bc = partition_of(relation, ["b", "c"])
        assert not coarse_b.refines_without_splitting(fine_bc)
        coarse_c = partition_of(relation, ["c"])
        assert not coarse_c.refines_without_splitting(partition_of(relation, ["c", "a"]))

    def test_refinement_detects_holding_fd(self):
        rows = [("1", "x", "p"), ("1", "x", "q"), ("2", "y", "p"), ("2", "y", "q")]
        relation = Relation.from_rows(SCHEMA, rows)
        coarse = partition_of(relation, ["a"])
        fine = partition_of(relation, ["a", "b"])
        assert coarse.refines_without_splitting(fine)  # a -> b holds

    def test_product_matches_direct_partition(self, relation):
        for left_attrs, right_attrs in ((["a"], ["b"]), (["b"], ["c"]), (["a"], ["c"])):
            product = partition_of(relation, left_attrs).product(
                partition_of(relation, right_attrs))
            direct = partition_of(relation, sorted(left_attrs + right_attrs))
            assert ({frozenset(g) for g in product.groups}
                    == {frozenset(g) for g in direct.groups})
            assert product.error == direct.error

    def test_nulls_group_together(self):
        relation = Relation.from_rows(SCHEMA, [
            (NULL, "x", "p"), (NULL, "x", "q"), ("1", "y", "p")])
        partition = partition_of(relation, ["a"])
        assert partition.groups == [[0, 1]]
        string_path = partition_of(relation, ["a"], use_columns=False)
        assert string_path.groups == partition.groups

    def test_string_path_matches_code_path(self, relation):
        relation.delete(2)  # tombstone awareness on the code path
        for attributes in (["a"], ["a", "b"], ["a", "b", "c"]):
            code = partition_of(relation, attributes)
            strings = partition_of(relation, attributes, use_columns=False)
            assert code.groups == strings.groups
            assert code.total_tuples == strings.total_tuples


class TestPartitionCacheAndProvider:
    def test_partitions_cached_per_version(self, relation):
        provider = PartitionProvider(relation)
        first = provider.partition(frozenset(["a"]))
        assert provider.partition(frozenset(["a"])) is first
        relation.insert(("9", "w", "r"))
        assert provider.partition(frozenset(["a"])) is not first  # invalidated

    def test_cache_shared_across_providers(self, relation):
        first = PartitionProvider(relation).partition(frozenset(["a", "b"]))
        assert PartitionProvider(relation).partition(frozenset(["a", "b"])) is first
        assert partition_cache(relation) is partition_cache(relation)

    def test_levelwise_composition_uses_products(self, relation, monkeypatch):
        provider = PartitionProvider(relation)
        provider.partition(frozenset(["a"]))
        provider.partition(frozenset(["b"]))

        def no_scan(attributes):  # pragma: no cover - failure path
            raise AssertionError("expected composition from cached partitions")

        monkeypatch.setattr(provider, "_scan", no_scan)
        composed = provider.partition(frozenset(["a", "b"]))
        direct = partition_of(relation, ["a", "b"])
        assert ({frozenset(g) for g in composed.groups}
                == {frozenset(g) for g in direct.groups})

    def test_string_provider_never_composes_and_keeps_private_cache(self, relation):
        code = PartitionProvider(relation)
        strings = PartitionProvider(relation, use_columns=False)
        code.partition(frozenset(["a"]))
        assert strings._cache is not code._cache
        partition = strings.partition(frozenset(["a"]))
        assert strings.partition(frozenset(["a"])) is partition  # still memoized

    def test_fd_discovery_reuses_cfd_discovery_partitions(self, relation):
        from repro.discovery.cfd_discovery import CFDDiscovery
        from repro.discovery.fd_discovery import FDDiscovery

        CFDDiscovery(relation, min_support=2, max_lhs_size=2).discover_variable_cfds()
        cached_before = len(partition_cache(relation))
        assert cached_before > 0
        FDDiscovery(relation, max_lhs_size=2).discover()
        # same relation version: the FD walk found every partition warm
        assert len(partition_cache(relation)) >= cached_before


class TestPartitionConstruction:
    def test_singletons_stripped_at_construction(self):
        partition = Partition([[1, 2], [3], [4, 5, 6], []], total_tuples=7)
        assert partition.groups == [[1, 2], [4, 5, 6]]
        assert partition.error == 3

    def test_empty_relation(self):
        relation = Relation(SCHEMA)
        partition = partition_of(relation, ["a"])
        assert partition.groups == [] and partition.error == 0
