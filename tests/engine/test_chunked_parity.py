"""Chunk-boundary parity: the engine must reproduce sequential reports.

The contract of :mod:`repro.engine` is that chunked detection — for
*every* chunk size and worker count — produces a
:class:`~repro.constraints.violations.ViolationReport` that is
byte-identical to the sequential columnar path (and therefore to the row
path, whose parity the columnar tests already pin down).  Chunk sizes 1,
2, a prime and "larger than the relation" force groups to straddle every
possible boundary layout; the mutation tests re-run detection after
interleaved inserts, deletes and updates so tombstoned tid ranges are
covered too.
"""

import pytest

from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.datagen.orders import OrdersGenerator
from repro.detection.batch import BatchCFDDetector
from repro.detection.cfd_detect import CFDDetector
from repro.detection.cind_detect import CINDDetector
from repro.detection.columnar import compile_tableau
from repro.engine.detect import ChunkedCFDEngine, ChunkedCINDEngine
from repro.engine.executor import MultiprocessingPool, SerialPool
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema

CHUNK_SIZES = [1, 2, 7, 10_000]


def report_fingerprint(violations):
    """Full observable content (constraint, pattern, tids), order included."""
    return [(v.cfd, v.pattern, v.tids) for v in violations]


def cind_fingerprint(violations):
    return [(v.cind, v.tid) for v in violations]


def noisy_customer(size, seed=101, rate=0.08):
    generator = CustomerGenerator(seed=seed)
    dirty = inject_noise(generator.generate(size), rate=rate,
                         attributes=["street", "city"], seed=size).dirty
    return dirty, generator.canonical_cfds()


def chunked_cfd_violations(relation, cfds, pool, kind="cfd", enumerate_pairs=False):
    items = [(cfd, compile_tableau(cfd, relation)) for cfd in cfds]
    engine = ChunkedCFDEngine(relation, items, pool, kind=kind,
                              enumerate_pairs=enumerate_pairs)
    return [violation for per_cfd in engine.detect() for violation in per_cfd]


class TestChunkBoundaryParity:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_cfd_detection_is_byte_identical_per_chunk_size(self, chunk_size):
        relation, cfds = noisy_customer(180)
        sequential = CFDDetector(relation, cfds).detect()
        rows = CFDDetector(relation, cfds, use_columns=False).detect()
        chunked = chunked_cfd_violations(relation, cfds,
                                         SerialPool(chunk_size=chunk_size))
        assert report_fingerprint(chunked) == report_fingerprint(sequential)
        assert report_fingerprint(chunked) == report_fingerprint(rows)

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_enumerate_pairs_is_byte_identical(self, chunk_size):
        relation, cfds = noisy_customer(140)
        sequential = CFDDetector(relation, cfds, enumerate_pairs=True).detect()
        chunked = chunked_cfd_violations(relation, cfds,
                                         SerialPool(chunk_size=chunk_size),
                                         enumerate_pairs=True)
        assert report_fingerprint(chunked) == report_fingerprint(sequential)

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_batch_detection_is_byte_identical(self, chunk_size):
        relation, cfds = noisy_customer(200)
        sequential = BatchCFDDetector(relation, cfds).detect()
        chunked = BatchCFDDetector(relation, cfds, engine="serial").detect()
        # also drive the engine with the explicit chunk size
        merged = BatchCFDDetector(relation, cfds).merged_cfds
        explicit = chunked_cfd_violations(relation, merged,
                                          SerialPool(chunk_size=chunk_size),
                                          kind="batch")
        assert report_fingerprint(chunked) == report_fingerprint(sequential)
        assert report_fingerprint(explicit) == report_fingerprint(sequential)

    @pytest.mark.parametrize("chunk_size", [1, 3, 10_000])
    def test_cind_detection_is_byte_identical(self, chunk_size):
        database, expected = OrdersGenerator(seed=7).generate(150, violation_rate=0.12)
        cind = OrdersGenerator.canonical_cind()
        sequential = CINDDetector(database, [cind]).detect()
        engine = ChunkedCINDEngine(database, [cind],
                                   SerialPool(chunk_size=chunk_size))
        chunked = [violation for per_cind in engine.detect() for violation in per_cind]
        assert cind_fingerprint(chunked) == \
            cind_fingerprint(sequential.cind_violations())
        assert len(chunked) == expected


class TestMultiprocessingParity:
    """Real worker processes (min_rows=0 forces the pool even on tiny data)."""

    def test_cfd_reports_match_across_worker_counts(self):
        relation, cfds = noisy_customer(160)
        sequential = CFDDetector(relation, cfds).detect()
        for workers in (2, 3):
            pool = MultiprocessingPool(workers=workers, min_rows=0)
            chunked = chunked_cfd_violations(relation, cfds, pool)
            assert report_fingerprint(chunked) == report_fingerprint(sequential)

    def test_detector_knobs_reach_the_engine(self):
        relation, cfds = noisy_customer(120)
        sequential = CFDDetector(relation, cfds).detect()
        parallel = CFDDetector(relation, cfds, engine="parallel", workers=2).detect()
        assert report_fingerprint(parallel) == report_fingerprint(sequential)
        assert parallel.summary() == sequential.summary()

    def test_cind_parallel_parity(self):
        database, _ = OrdersGenerator(seed=11).generate(120, violation_rate=0.1)
        cind = OrdersGenerator.canonical_cind()
        sequential = CINDDetector(database, [cind]).detect()
        pool = MultiprocessingPool(workers=2, min_rows=0)
        engine = ChunkedCINDEngine(database, [cind], pool)
        chunked = [violation for per_cind in engine.detect() for violation in per_cind]
        assert cind_fingerprint(chunked) == \
            cind_fingerprint(sequential.cind_violations())


class TestParityUnderMutation:
    def test_interleaved_inserts_and_deletes_stay_in_parity(self):
        relation, cfds = noisy_customer(90)
        detector = CFDDetector(relation, cfds, engine="serial")
        baseline = CFDDetector(relation, cfds)
        assert report_fingerprint(detector.detect()) == \
            report_fingerprint(baseline.detect())

        tids = relation.tids()
        relation.delete(tids[5])
        relation.insert_dict({a: "zz" for a in relation.schema.attribute_names})
        relation.delete(tids[0])
        relation.update(tids[10], "city", "mos")
        relation.insert_dict({a: "yy" for a in relation.schema.attribute_names})

        # both the reused plan and a fresh sequential detector see the changes
        assert report_fingerprint(detector.detect()) == \
            report_fingerprint(CFDDetector(relation, cfds).detect())

    def test_mutation_rebroadcasts_state_to_worker_processes(self):
        relation, cfds = noisy_customer(80)
        detector = CFDDetector(relation, cfds, engine="parallel", workers=2)
        # force the multiprocessing path regardless of relation size
        detector._pool.min_rows = 0
        first = detector.detect()
        assert report_fingerprint(first) == \
            report_fingerprint(CFDDetector(relation, cfds).detect())
        relation.update(relation.tids()[3], "city", "somewhere-new")
        second = detector.detect()
        assert report_fingerprint(second) == \
            report_fingerprint(CFDDetector(relation, cfds).detect())


class TestEngineEdgeCases:
    def test_empty_relation(self):
        schema = RelationSchema("r", [Attribute("x"), Attribute("y")])
        relation = Relation(schema)
        from repro.constraints.cfd import CFD
        cfds = [CFD.single("r", ["x"], ["y"])]
        assert chunked_cfd_violations(relation, cfds, SerialPool()) == []
        report = CFDDetector(relation, cfds, engine="serial").detect()
        assert report.is_clean()

    def test_detect_one_with_registered_and_foreign_cfds(self):
        relation, cfds = noisy_customer(100)
        detector = CFDDetector(relation, cfds, engine="serial")
        sequential = CFDDetector(relation, cfds)
        for cfd in cfds:
            assert report_fingerprint(detector.detect_one(cfd)) == \
                report_fingerprint(sequential.detect_one(cfd))
        # a CFD the detector was not constructed with takes the ephemeral path
        from repro.constraints.cfd import CFD
        foreign = CFD.single("customer", ["zip"], ["city"])
        assert report_fingerprint(detector.detect_one(foreign)) == \
            report_fingerprint(sequential.detect_one(foreign))

    def test_single_chunk_equals_unchunked(self):
        relation, cfds = noisy_customer(60)
        one_chunk = chunked_cfd_violations(relation, cfds, SerialPool(num_chunks=1))
        sequential = CFDDetector(relation, cfds).detect()
        assert report_fingerprint(one_chunk) == report_fingerprint(sequential)

    def test_nulls_and_numeric_patterns_across_chunks(self):
        from repro.constraints.cfd import CFD
        schema = RelationSchema("r", [
            Attribute("x"), Attribute("y"), Attribute("z"),
        ])
        relation = Relation.from_rows(schema, [
            ("1", "a", "p"), ("1", "a", "q"), ("1", "b", "p"),
            (None, "a", "p"), ("2", None, "p"), ("2", "c", "p"), ("2", "c", "q"),
        ])
        cfds = [
            CFD.single("r", ["x"], ["y"]),
            CFD.single("r", ["x"], ["z"], {"x": 1}),
            CFD.single("r", ["x"], ["y"], {"x": "2", "y": "c"}),
        ]
        sequential = CFDDetector(relation, cfds).detect()
        for chunk_size in (1, 2, 3):
            chunked = chunked_cfd_violations(relation, cfds,
                                             SerialPool(chunk_size=chunk_size))
            assert report_fingerprint(chunked) == report_fingerprint(sequential)
