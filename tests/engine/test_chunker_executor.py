"""Unit tests for the engine building blocks: chunker, pools, merger."""

import pytest

from repro.engine.chunker import Chunk, Chunker
from repro.engine.executor import (
    ENGINE_ENV,
    MultiprocessingPool,
    SerialPool,
    StateHandle,
    WORKERS_ENV,
    resolve_pool,
)
from repro.engine.merge import GroupMerger, split_batches
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema

SCHEMA = RelationSchema("r", [Attribute("x"), Attribute("y")])


def relation_of(n):
    return Relation.from_rows(SCHEMA, [(str(i % 5), str(i % 3)) for i in range(n)])


class TestChunker:
    def test_balanced_chunks_partition_the_live_tids(self):
        relation = relation_of(10)
        chunks = Chunker(relation, num_chunks=3).chunks()
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert [tid for c in chunks for tid in c.tids] == relation.tids()

    def test_chunk_size_slicing(self):
        relation = relation_of(10)
        chunks = Chunker(relation, chunk_size=4).chunks()
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert [c.index for c in chunks] == [0, 1, 2]

    def test_more_chunks_than_tuples(self):
        relation = relation_of(3)
        chunks = Chunker(relation, num_chunks=10).chunks()
        assert [len(c) for c in chunks] == [1, 1, 1]

    def test_empty_relation_has_no_chunks(self):
        assert Chunker(Relation(SCHEMA), num_chunks=4).chunks() == []

    def test_chunks_skip_deleted_tids(self):
        relation = relation_of(8)
        for tid in (0, 3, 7):
            relation.delete(tid)
        chunks = Chunker(relation, num_chunks=2).chunks()
        assert [tid for c in chunks for tid in c.tids] == [1, 2, 4, 5, 6]

    def test_invalid_parameters(self):
        relation = relation_of(2)
        with pytest.raises(ValueError):
            Chunker(relation, chunk_size=0)
        with pytest.raises(ValueError):
            Chunker(relation, num_chunks=0)

    def test_chunk_repr_mentions_bounds(self):
        chunk = Chunk(0, [3, 4, 9])
        assert "[3..9]" in repr(chunk)


class TestGroupMerger:
    def test_merge_preserves_first_occurrence_order_and_ascending_tids(self):
        merger = GroupMerger()
        merger.add_chunk({(1,): [0, 2], (2,): [1]})
        merger.add_chunk({(3,): [4], (1,): [5]})
        assert list(merger.groups) == [(1,), (2,), (3,)]
        assert merger.groups[(1,)] == [0, 2, 5]

    def test_checkable_groups_filters_singletons_and_null_keys(self):
        from repro.relational.columns import NULL_CODE
        merger = GroupMerger()
        merger.add_chunk({(1,): [0, 1], (NULL_CODE,): [2, 3], (4,): [5]})
        assert merger.checkable_groups() == [[0, 1]]


class TestSplitBatches:
    def test_contiguous_and_balanced(self):
        batches = split_batches(list(range(10)), 3)
        assert batches == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_fewer_items_than_parts(self):
        assert split_batches([1, 2], 5) == [[1], [2]]

    def test_empty(self):
        assert split_batches([], 3) == []


class TestResolvePool:
    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert resolve_pool() is None
        assert resolve_pool("sequential") is None

    def test_explicit_engines(self):
        assert isinstance(resolve_pool("serial"), SerialPool)
        pool = resolve_pool("parallel", workers=3)
        assert isinstance(pool, MultiprocessingPool)
        assert pool.workers == 3

    def test_workers_imply_an_engine(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert isinstance(resolve_pool(workers=2), MultiprocessingPool)
        assert isinstance(resolve_pool(workers=1), SerialPool)

    def test_environment_defaults(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "parallel")
        monkeypatch.setenv(WORKERS_ENV, "5")
        pool = resolve_pool()
        assert isinstance(pool, MultiprocessingPool)
        assert pool.workers == 5
        monkeypatch.setenv(ENGINE_ENV, "serial")
        assert isinstance(resolve_pool(), SerialPool)

    def test_explicit_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "parallel")
        assert resolve_pool("sequential") is None

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError):
            resolve_pool("warp-drive")


class TestPools:
    def test_state_handles_have_unique_tokens(self):
        state = {"a": 1}
        assert StateHandle(state).token != StateHandle(state).token

    def test_serial_pool_runs_tasks_in_order(self):
        pool = SerialPool()
        handle = StateHandle({"s": {"tests": [], "key_arrays": [[1, 2, 3]],
                                    "key_bridges": [list(range(4))]}})
        results = pool.run(handle, [("cind_rhs", ("s", [0])), ("cind_rhs", ("s", [2]))])
        assert results == [{(1,)}, {(3,)}]

    def test_multiprocessing_pool_small_input_falls_back_in_process(self):
        pool = MultiprocessingPool(workers=2, min_rows=10_000)
        handle = StateHandle({"s": {"tests": [], "key_arrays": [[7, 8]],
                                    "key_bridges": [list(range(9))]}})
        results = pool.run(handle, [("cind_rhs", ("s", [0, 1]))], rows=2)
        assert results == [{(7,), (8,)}]

    def test_multiprocessing_pool_real_processes(self):
        pool = MultiprocessingPool(workers=2, min_rows=0)
        handle = StateHandle({"s": {"tests": [], "key_arrays": [[5, 6, 7]],
                                    "key_bridges": [list(range(8))]}})
        results = pool.run(
            handle, [("cind_rhs", ("s", [0])), ("cind_rhs", ("s", [1, 2]))], rows=3)
        assert results == [{(5,)}, {(6,), (7,)}]

    def test_chunk_plan_prefers_explicit_chunk_size(self):
        assert SerialPool(chunk_size=7).chunk_plan(100) == {"chunk_size": 7}
        assert SerialPool().chunk_plan(100) == {"num_chunks": SerialPool.DEFAULT_CHUNKS}
        assert MultiprocessingPool(workers=3).chunk_plan(100) == {"num_chunks": 3}


class TestColumnChunkViews:
    def test_take_aligns_codes_with_tids(self):
        from repro.relational.columns import take
        relation = relation_of(6)
        codes = relation.columns.column("x").codes
        assert take(codes, [4, 0, 2]) == [codes[4], codes[0], codes[2]]

    def test_take_on_a_gap_free_slice_matches_direct_indexing(self):
        from repro.relational.columns import take
        relation = relation_of(8)
        relation.delete(2)
        codes = relation.columns.column("y").codes
        live = relation.tids()
        assert take(codes, live) == [codes[tid] for tid in live]
