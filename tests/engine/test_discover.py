"""Tests for the chunked partition engine (discovery on the worker pool)."""

import pytest

from repro.datagen.customer import CustomerGenerator
from repro.engine.discover import ChunkedPartitionEngine
from repro.engine.executor import MultiprocessingPool, SerialPool
from repro.engine.worker import run_local
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema

SCHEMA = RelationSchema("r", [Attribute("a"), Attribute("b")])


@pytest.fixture
def relation():
    return Relation.from_rows(SCHEMA, [
        ("1", "x"), ("2", "x"), ("1", "y"), ("1", "x"), ("2", "y"), ("3", "x"),
    ])


class TestPartitionScanWorker:
    def test_partial_groups_in_chunk_order(self, relation):
        store = relation.columns
        state = {"partition": {"arrays": store.code_arrays(range(2))}}
        [result] = run_local(state, [("partition_scan", ("partition", (0,), [0, 1, 2, 3]))])
        code_one = store.column("a").codes[0]
        code_two = store.column("a").codes[1]
        assert result[code_one] == [0, 2, 3]
        assert result[code_two] == [1]

    def test_multi_position_keys_are_tuples(self, relation):
        store = relation.columns
        state = {"partition": {"arrays": store.code_arrays(range(2))}}
        [result] = run_local(
            state, [("partition_scan", ("partition", (0, 1), relation.tids()))])
        assert all(isinstance(key, tuple) and len(key) == 2 for key in result)
        assert sum(len(tids) for tids in result.values()) == len(relation)


class TestChunkedPartitionEngine:
    def _expected(self, relation, attributes):
        positions = relation.schema.positions(attributes)
        return list(relation.columns.partition_groups(positions).values())

    @pytest.mark.parametrize("chunk_size", [1, 2, 5, 100])
    def test_merged_groups_match_sequential_scan(self, relation, chunk_size):
        engine = ChunkedPartitionEngine(relation, SerialPool(chunk_size=chunk_size))
        for attributes in (["a"], ["b"], ["a", "b"]):
            assert engine.groups_of(attributes) == self._expected(relation, attributes)

    def test_rebroadcast_after_mutation(self, relation):
        engine = ChunkedPartitionEngine(relation, SerialPool())
        before = engine.groups_of(["a"])
        token = engine._handle.token
        relation.insert(("1", "z"))
        after = engine.groups_of(["a"])
        assert engine._handle.token != token  # state re-tokenised
        assert after == self._expected(relation, ["a"])
        assert before != after

    def test_token_stable_without_mutation(self, relation):
        engine = ChunkedPartitionEngine(relation, SerialPool())
        engine.groups_of(["a"])
        token = engine._handle.token
        engine.groups_of(["b"])
        assert engine._handle.token == token  # many attribute sets, one broadcast

    def test_empty_relation(self):
        engine = ChunkedPartitionEngine(Relation(SCHEMA), SerialPool())
        assert engine.groups_of(["a"]) == []

    def test_real_process_pool(self):
        relation = CustomerGenerator(seed=77).generate(120)
        pool = MultiprocessingPool(workers=2, min_rows=0)
        engine = ChunkedPartitionEngine(relation, pool)
        for attributes in (["cc"], ["cc", "zip"]):
            assert engine.groups_of(attributes) == self._expected(relation, attributes)
