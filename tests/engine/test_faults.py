"""Chaos tests: the supervised parallel engine under injected faults.

The supervision contract of :mod:`repro.engine` is that worker faults —
clean in-worker exceptions, hard crashes (``os._exit``), hangs — slow a
run down but never change its results: failed tasks are retried (on the
live pool for clean errors, on a rebuilt pool after crashes and
timeouts) and finally degrade to in-process execution, where injected
faults never fire.  These tests drive every chunked engine family
(detection, discovery, SQL scans/joins/multiway joins) through real
process pools with seeded and scripted fault schedules and assert the
output is byte-identical to the fault-free path, the supervision obs
counters move, and no raw ``multiprocessing`` exception escapes.
"""

import random
from time import perf_counter

import pytest

from repro import config, obs
from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.datagen.orders import OrdersGenerator
from repro.detection.cfd_detect import CFDDetector
from repro.detection.cind_detect import CINDDetector
from repro.discovery.cfd_discovery import CFDDiscovery
from repro.engine.executor import (
    MultiprocessingPool,
    _close_pool,
    _merge_timed,
    _merge_timed_stream,
    _pools,
    shutdown_pools,
)
from repro.engine.worker import (
    FaultInjector,
    ScriptedFaults,
    TaskFailure,
    clear_faults,
    install_faults,
)
from repro.errors import EngineError, TaskTimeoutError, WorkerCrashError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.sql.engine import SQLEngine
from repro.relational.types import NULL


@pytest.fixture(autouse=True)
def chaos():
    """Fresh obs registry, no faults, no leftover pools around every test."""
    saved_enabled, saved_trace = obs.enabled, obs.trace_enabled
    obs.reset()
    clear_faults()
    shutdown_pools()
    yield
    clear_faults()
    shutdown_pools()
    obs.enabled, obs.trace_enabled = saved_enabled, saved_trace
    obs.reset()


@pytest.fixture
def forced_parallel(monkeypatch):
    """Make the parallel backend fork real pools even for tiny test data."""
    monkeypatch.setenv(config.THRESHOLD_ENV, "0")


def noisy_customer(size, seed=101, rate=0.08):
    generator = CustomerGenerator(seed=seed)
    dirty = inject_noise(generator.generate(size), rate=rate,
                         attributes=["street", "city"], seed=size).dirty
    return dirty, generator.canonical_cfds()


def report_fingerprint(report):
    return [(v.cfd, v.pattern, v.tids) for v in report.violations]


def counters():
    return obs.metrics()["counters"]


ORDERS = RelationSchema("orders", [Attribute("city"), Attribute("zip")])
ZIPS = RelationSchema("zips", [Attribute("zip"), Attribute("region")])
REGIONS = RelationSchema("regions", [Attribute("region"), Attribute("name")])


def join_database(seed=5, orders=90, zips=40):
    rng = random.Random(seed)
    zip_pool = ["EH8", "10012", "94107", "WC1", "100080", NULL]
    region_pool = ["uk", "us", "cn", NULL]
    database = Database()
    database.add(Relation.from_rows(ORDERS, [
        (rng.choice(["edi", "nyc", "sfo", "ldn"]), rng.choice(zip_pool))
        for _ in range(orders)]))
    database.add(Relation.from_rows(ZIPS, [
        (rng.choice(zip_pool), rng.choice(region_pool)) for _ in range(zips)]))
    database.add(Relation.from_rows(REGIONS, [
        ("uk", "europe"), ("us", "america"), ("cn", "asia")]))
    return database


JOIN_QUERY = ("SELECT o.city, COUNT(*) AS n FROM orders o JOIN zips z "
              "ON o.zip = z.zip GROUP BY o.city ORDER BY city")
MULTIWAY_QUERY = ("SELECT o.city, r.name FROM orders o, zips z, regions r "
                  "WHERE o.zip = z.zip AND z.region = r.region")
SCAN_QUERY = ("SELECT zip, COUNT(*) AS n FROM orders "
              "GROUP BY zip ORDER BY zip")


def rows(result):
    return [tuple(row.values) for row in result]


class TestSeededFaultParity:
    """Seeded random fault schedules: results identical to the clean path."""

    def test_cfd_detection_survives_raises_and_crashes(self, forced_parallel):
        relation, cfds = noisy_customer(150)
        expected = report_fingerprint(
            CFDDetector(relation, cfds, engine="sequential").detect())
        install_faults(FaultInjector({"raise": 0.15, "crash": 0.1}, seed=7))
        detector = CFDDetector(relation, cfds, engine="parallel", workers=2,
                               task_timeout=30.0, task_retries=4)
        assert report_fingerprint(detector.detect()) == expected

    def test_cind_detection_survives_raises(self, forced_parallel):
        database, _ = OrdersGenerator(seed=9).generate(130, violation_rate=0.1)
        cind = OrdersGenerator.canonical_cind()
        expected = CINDDetector(database, [cind], engine="sequential").detect()
        install_faults(FaultInjector({"raise": 0.3}, seed=11))
        supervised = CINDDetector(database, [cind], engine="parallel",
                                  workers=2, task_timeout=30.0,
                                  task_retries=3).detect()
        assert [(v.cind, v.tid) for v in supervised.cind_violations()] == \
            [(v.cind, v.tid) for v in expected.cind_violations()]

    def test_discovery_survives_raises_and_crashes(self, forced_parallel):
        relation, _ = noisy_customer(120)
        expected = CFDDiscovery(relation, engine="sequential").discover()
        install_faults(FaultInjector({"raise": 0.2, "crash": 0.05}, seed=13))
        supervised = CFDDiscovery(relation, engine="parallel", workers=2,
                                  task_timeout=30.0, task_retries=4).discover()
        assert [repr(cfd) for cfd in supervised] == \
            [repr(cfd) for cfd in expected]

    @pytest.mark.parametrize("query", [SCAN_QUERY, JOIN_QUERY, MULTIWAY_QUERY])
    def test_sql_paths_survive_raises_and_crashes(self, forced_parallel, query):
        database = join_database()
        expected = rows(SQLEngine(database, engine="sequential").query(query))
        install_faults(FaultInjector({"raise": 0.2, "crash": 0.1}, seed=17))
        supervised = SQLEngine(join_database(), engine="parallel", workers=2,
                               task_timeout=30.0, task_retries=4)
        assert rows(supervised.query(query)) == expected

    def test_env_injected_faults_reach_the_workers(self, forced_parallel,
                                                   monkeypatch):
        monkeypatch.setenv(config.FAULTS_ENV, "raise:1.0")
        monkeypatch.setenv(config.FAULTS_SEED_ENV, "23")
        obs.enable()
        relation, cfds = noisy_customer(100)
        expected = report_fingerprint(
            CFDDetector(relation, cfds, use_columns=False).detect())
        detector = CFDDetector(relation, cfds, engine="parallel", workers=2,
                               task_timeout=30.0, task_retries=1)
        assert report_fingerprint(detector.detect()) == expected
        recorded = counters()
        # every pool dispatch raised, so the run degraded to in-process
        # execution (where env faults never fire) and stayed correct
        assert recorded["engine.task.failure.error"] >= 1
        assert recorded["engine.fallback.serial"] >= 1


class TestScriptedFaults:
    """Deterministic per-worker fault scripts pin down the supervision FSM."""

    def test_clean_errors_retry_on_the_live_pool(self, forced_parallel):
        obs.enable()
        relation, cfds = noisy_customer(110)
        expected = report_fingerprint(
            CFDDetector(relation, cfds, engine="sequential").detect())
        # each forked worker raises on its first dispatch, then runs clean
        install_faults(ScriptedFaults(["raise"]))
        detector = CFDDetector(relation, cfds, engine="parallel", workers=2,
                               task_timeout=30.0, task_retries=3)
        assert report_fingerprint(detector.detect()) == expected
        recorded = counters()
        assert recorded["engine.task.failure.error"] >= 1
        assert recorded["engine.task.retry"] >= 1
        # clean in-worker errors never force a pool rebuild
        assert "engine.pool.rebuild" not in recorded

    def test_worker_crash_rebuilds_pool_and_recovers(self, forced_parallel):
        obs.enable()
        relation, cfds = noisy_customer(110)
        expected = report_fingerprint(
            CFDDetector(relation, cfds, engine="sequential").detect())
        # each worker's second dispatch hard-exits (os._exit): with two
        # workers and more than two tasks some worker always reaches it
        install_faults(ScriptedFaults([None, "crash"]))
        detector = CFDDetector(relation, cfds, engine="parallel", workers=2,
                               task_timeout=30.0, task_retries=4)
        assert report_fingerprint(detector.detect()) == expected
        recorded = counters()
        assert recorded["engine.task.failure.crash"] >= 1
        assert recorded["engine.pool.rebuild"] >= 1
        assert recorded["engine.task.retry"] >= 1

    def test_task_timeout_bounds_a_hung_worker(self, forced_parallel,
                                               monkeypatch):
        monkeypatch.setenv(config.TASK_TIMEOUT_ENV, "1")
        obs.enable()
        relation, cfds = noisy_customer(90)
        cfds = cfds[:1]  # one spec keeps the number of timed-out rounds small
        expected = report_fingerprint(
            CFDDetector(relation, cfds, engine="sequential").detect())
        # every worker generation hangs on its first dispatch, so only the
        # serial fallback (no injection there) can finish the run
        install_faults(ScriptedFaults(["hang"]))
        detector = CFDDetector(relation, cfds, engine="parallel", workers=2,
                               task_retries=1)
        start = perf_counter()
        assert report_fingerprint(detector.detect()) == expected
        elapsed = perf_counter() - start
        assert elapsed < 30.0  # bounded by (retries + 1) x REPRO_TASK_TIMEOUT
        recorded = counters()
        assert recorded["engine.task.timeout"] >= 1
        assert recorded["engine.task.failure.timeout"] >= 1
        assert recorded["engine.pool.rebuild"] >= 1
        assert recorded["engine.fallback.serial"] >= 1


class TestStrictMode:
    """REPRO_TASK_FALLBACK=0 raises the taxonomy errors instead of degrading."""

    def test_exhausted_errors_raise_worker_crash_error(self, forced_parallel,
                                                       monkeypatch):
        monkeypatch.setenv(config.TASK_FALLBACK_ENV, "0")
        relation, cfds = noisy_customer(90)
        install_faults(ScriptedFaults(["raise"] * 64))
        detector = CFDDetector(relation, cfds[:1], engine="parallel",
                               workers=2, task_timeout=30.0, task_retries=1)
        with pytest.raises(WorkerCrashError) as excinfo:
            detector.detect()
        error = excinfo.value
        assert error.task is not None
        assert error.attempts == 2  # the first round plus one retry
        assert error.payload_summary is not None
        assert error.task in error.payload_summary

    def test_exhausted_hangs_raise_task_timeout_error(self, forced_parallel,
                                                      monkeypatch):
        monkeypatch.setenv(config.TASK_FALLBACK_ENV, "0")
        monkeypatch.setenv(config.TASK_TIMEOUT_ENV, "1")
        relation, cfds = noisy_customer(90)
        install_faults(ScriptedFaults(["hang"] * 64))
        detector = CFDDetector(relation, cfds[:1], engine="parallel",
                               workers=2, task_retries=0)
        with pytest.raises(TaskTimeoutError) as excinfo:
            detector.detect()
        assert excinfo.value.attempts == 1
        assert isinstance(excinfo.value, EngineError)


class TestStrictMerges:
    """Task/result pairing never truncates silently."""

    TASKS = [("cfd_scan", ("spec", [0, 1])), ("cfd_scan", ("spec", [2, 3]))]

    def test_short_results_raise_naming_the_results_side(self):
        with pytest.raises(EngineError, match="results side is short"):
            _merge_timed(self.TASKS, [(0.0, "only-one")])

    def test_extra_results_raise_naming_the_tasks_side(self):
        with pytest.raises(EngineError, match="tasks side is short"):
            _merge_timed(self.TASKS, [(0.0, "a"), (0.0, "b"), (0.0, "c")])

    def test_matched_lengths_unwrap_in_order(self):
        assert _merge_timed(self.TASKS, [(0.1, "a"), (0.2, "b")]) == ["a", "b"]

    def test_stream_short_results_raise(self):
        stream = _merge_timed_stream(self.TASKS, iter([(0.0, "a")]))
        assert next(stream) == "a"
        with pytest.raises(EngineError, match="results side is short"):
            next(stream)

    def test_stream_extra_results_raise(self):
        stream = _merge_timed_stream(
            self.TASKS, iter([(0.0, "a"), (0.0, "b"), (0.0, "c")]))
        assert next(stream) == "a"
        assert next(stream) == "b"
        with pytest.raises(EngineError, match="tasks side is short"):
            next(stream)


class _BrokenPool:
    def terminate(self):
        raise OSError("worker pipe already gone")

    def join(self):  # pragma: no cover - terminate raises first
        raise AssertionError("join must not run when terminate failed")


class TestTeardownHardening:
    def test_close_pool_swallows_teardown_errors(self):
        obs.enable()
        key = (99, 999_999)
        _pools[key] = _BrokenPool()
        _close_pool(key)  # must not raise
        assert key not in _pools
        assert counters()["engine.pool.stop_error"] == 1

    def test_interrupted_round_retires_the_pool(self, forced_parallel,
                                                monkeypatch):
        relation, cfds = noisy_customer(90)
        detector = CFDDetector(relation, cfds[:1], engine="parallel",
                               workers=2, task_timeout=30.0)

        def interrupted(self, pool, tasks, indices):
            raise KeyboardInterrupt

        monkeypatch.setattr(MultiprocessingPool, "_dispatch_round", interrupted)
        with pytest.raises(KeyboardInterrupt):
            detector.detect()
        assert not _pools  # the half-collected round's pool was terminated


class TestFailureRecords:
    def test_task_failure_is_picklable(self):
        import pickle

        failure = TaskFailure("cfd_scan", "crash", "worker died")
        clone = pickle.loads(pickle.dumps(failure))
        assert (clone.task, clone.kind, clone.message) == \
            ("cfd_scan", "crash", "worker died")

    def test_injector_streams_are_reproducible_per_seed(self):
        first = FaultInjector({"raise": 0.5}, seed=3)
        second = FaultInjector({"raise": 0.5}, seed=3)
        draws = [first.draw("t") for _ in range(32)]
        assert draws == [second.draw("t") for _ in range(32)]
        assert "raise" in draws and None in draws
