"""Tests for the chunked SQL scan engine and its worker handlers."""

import pytest

from repro.engine.discover import ChunkedPartitionEngine
from repro.engine.executor import MultiprocessingPool, SerialPool
from repro.engine.sql import AggregateMerger, ChunkedSQLEngine
from repro.engine.worker import run_local
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import NULL, AttributeType

SCHEMA = RelationSchema("r", [
    Attribute("k", AttributeType.STRING),
    Attribute("v", AttributeType.INTEGER),
])

ROWS = [
    ("a", 3), ("b", 1), ("a", NULL), ("b", 4), ("a", 3),
    ("c", 9), (NULL, 2), ("b", 1),
]


@pytest.fixture
def relation():
    return Relation.from_rows(SCHEMA, ROWS)


def _state(relation):
    arrays = relation.columns.code_arrays(range(relation.schema.arity))
    return {"sql": {"arrays": arrays}}


def _query(relation, filters=(), group=None, aggs=()):
    aggs = list(aggs)
    resolved = []
    for spec in aggs:
        if spec[0] in ("min", "max"):
            ranks = relation.columns.column_at(spec[1]).order().ranks
            resolved.append((spec[0], spec[1], ranks))
        else:
            resolved.append(spec)
    return {"filters": list(filters), "group": group, "aggs": resolved}


class TestSqlScanWorker:
    def test_plain_scan_filters_by_code_membership(self, relation):
        column = relation.columns.column("k")
        allowed = {column.code_of("a"), column.code_of("b")}
        query = _query(relation, filters=[(0, allowed)])
        [tids] = run_local(_state(relation), [("sql_scan", ("sql", query, relation.tids()))])
        assert tids == [0, 1, 2, 3, 4, 7]

    def test_empty_filter_set_selects_nothing(self, relation):
        query = _query(relation, filters=[(0, set())])
        [tids] = run_local(_state(relation), [("sql_scan", ("sql", query, relation.tids()))])
        assert tids == []

    def test_grouped_scan_builds_partial_states(self, relation):
        query = _query(relation, group=(0,), aggs=[
            ("count_star",), ("count", 1), ("count_distinct", 1),
            ("sum", 1, False), ("min", 1), ("max", 1)])
        [groups] = run_local(_state(relation),
                             [("sql_scan", ("sql", query, relation.tids()))])
        k = relation.columns.column("k")
        v = relation.columns.column("v")
        entry = groups[k.code_of("a")]
        assert entry[0] == 0  # representative: first tid of the group
        assert entry[1] == 3  # COUNT(*)
        assert entry[2] == 2  # COUNT(v): the NULL v is skipped
        assert entry[3] == {v.code_of(3)}  # COUNT(DISTINCT v)
        assert entry[4] == [v.code_of(3), v.code_of(3)]  # SUM codes, scan order
        assert v.values[entry[5][1]] == 3 and v.values[entry[6][1]] == 3
        # NULL group key participates like any other value
        assert groups[k.code_of(NULL)][1] == 1

    def test_global_group_key_is_empty_tuple(self, relation):
        query = _query(relation, group=(), aggs=[("count_star",)])
        [groups] = run_local(_state(relation),
                             [("sql_scan", ("sql", query, relation.tids()))])
        assert set(groups) == {()} and groups[()][1] == len(ROWS)


class TestAggregateMerger:
    def test_combines_partials_like_one_chunk(self, relation):
        aggs = [("count_star",), ("count", 1), ("count_distinct", 1),
                ("sum", 1, False), ("min", 1), ("max", 1)]
        query = _query(relation, group=(0,), aggs=aggs)
        state = _state(relation)
        [whole] = run_local(state, [("sql_scan", ("sql", query, relation.tids()))])
        merger = AggregateMerger(query["aggs"])
        for chunk in ([0, 1, 2], [3, 4, 5], [6, 7]):
            [partial] = run_local(state, [("sql_scan", ("sql", query, chunk))])
            merger.add_chunk(partial)
        assert merger.groups == whole
        assert list(merger.groups) == list(whole)  # first-occurrence key order

    def test_min_ties_keep_first_occurrence(self):
        merger = AggregateMerger([("min", 0, [])])
        merger.add_chunk({1: [0, (5, 11)]})
        merger.add_chunk({1: [9, (5, 12)]})  # same rank, later chunk
        assert merger.groups[1] == [0, (5, 11)]


class TestChunkedSQLEngine:
    def _reference(self, relation, query):
        [result] = run_local(_state(relation),
                             [("sql_scan", ("sql", dict(query), relation.tids()))])
        return result

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 100])
    def test_plain_scan_matches_single_chunk(self, relation, chunk_size):
        column = relation.columns.column("v")
        query = _query(relation, filters=[(1, column.order().codes_in_range(">=", 2))])
        engine = ChunkedSQLEngine(relation, SerialPool(chunk_size=chunk_size))
        assert engine.scan(query) == self._reference(relation, query)

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 100])
    def test_grouped_scan_matches_single_chunk(self, relation, chunk_size):
        query = _query(relation, group=(0,), aggs=[
            ("count_star",), ("sum", 1, False), ("min", 1)])
        engine = ChunkedSQLEngine(relation, SerialPool(chunk_size=chunk_size))
        assert engine.scan_grouped(query) == self._reference(relation, query)

    def test_empty_relation(self):
        relation = Relation(SCHEMA)
        engine = ChunkedSQLEngine(relation, SerialPool())
        assert engine.scan(_query(relation)) == []
        assert engine.scan_grouped(_query(relation, group=(0,),
                                          aggs=[("count_star",)])) == {}

    def test_handle_retokenises_on_mutation(self, relation):
        engine = ChunkedSQLEngine(relation, SerialPool())
        query = _query(relation, group=(0,), aggs=[("count_star",)])
        first = engine._ensure_handle()
        engine.scan_grouped(query)
        relation.insert(["a", 8])
        second = engine._ensure_handle()
        assert second.token != first.token and second.supersedes == first.token
        groups = engine.scan_grouped(_query(relation, group=(0,),
                                            aggs=[("count_star",)]))
        k = relation.columns.column("k")
        assert groups[k.code_of("a")][1] == 4

    def test_real_process_pool(self, relation, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "0")
        query = _query(relation, group=(0,), aggs=[
            ("count_star",), ("sum", 1, False), ("max", 1)])
        pool = MultiprocessingPool(workers=2, min_rows=0)
        engine = ChunkedSQLEngine(relation, pool)
        assert engine.scan_grouped(query) == self._reference(relation, query)


class TestSubsetCheckWorker:
    def test_verdicts_match_sequential_walk(self, relation):
        arrays = relation.columns.code_arrays(range(relation.schema.arity))
        state = {"partition": {"arrays": arrays}}
        groups = [[0, 2, 4], [1, 3, 7], [5]]
        [verdicts] = run_local(
            state, [("subset_check", ("partition", (0,), 1, groups))])
        # group a: v codes {3, NULL, 3} -> first-seen NULL differs from 3
        assert verdicts == [False, False, True]

    def test_refine_subsets_batches_preserve_order(self, relation):
        engine = ChunkedPartitionEngine(relation, SerialPool(chunk_size=1))
        groups = [[0, 4], [1, 7], [1, 3], [5]]
        verdicts = engine.refine_subsets(["k"], "v", groups)
        assert verdicts == [True, True, False, True]
        assert engine.refine_subsets(["k"], "v", []) == []
