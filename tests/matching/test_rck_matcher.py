"""Tests for RCKs, their derivation from rules, and the record matcher."""

import pytest

from repro.datagen.cards import CardBillingGenerator
from repro.errors import MatchingError
from repro.matching.derivation import concluded_matches, derive_rcks, entails_target
from repro.matching.evaluation import evaluate_matching
from repro.matching.matcher import RecordMatcher
from repro.matching.rck import RelativeCandidateKey
from repro.matching.rules import Comparator, MatchingRule


def tutorial_rules():
    """The tutorial's rules (a), (b), (c) over (card, billing)."""
    rule_a = MatchingRule.build([Comparator.equality("phn")], ["addr"], name="a")
    rule_b = MatchingRule.build([Comparator.equality("email")], ["fn", "ln"], name="b")
    rule_c = MatchingRule.build(
        [Comparator.equality("ln"), Comparator.equality("addr"),
         Comparator.similar("fn", threshold=0.7)],
        ["fn", "ln", "addr", "phn", "email"], name="c")
    return [rule_a, rule_b, rule_c]


TARGET = ["fn", "ln", "addr", "phn", "email"]


class TestRCK:
    def test_build_and_repr(self):
        rck = RelativeCandidateKey.build(
            [Comparator.equality("email"), Comparator.equality("addr")], TARGET, name="rck1")
        assert rck.arity() == 2
        assert not rck.uses_similarity()
        assert "rck1" in repr(rck) and "‖" in repr(rck)

    def test_needs_comparators(self):
        with pytest.raises(MatchingError):
            RelativeCandidateKey.build([], TARGET)

    def test_subsumption(self):
        small = RelativeCandidateKey.build([Comparator.equality("email")], TARGET)
        large = RelativeCandidateKey.build(
            [Comparator.equality("email"), Comparator.equality("addr")], TARGET)
        assert small.subsumes(large)
        assert not large.subsumes(small)

    def test_equality_satisfies_similarity_requirement(self):
        similar = RelativeCandidateKey.build([Comparator.similar("fn")], TARGET)
        equal = RelativeCandidateKey.build([Comparator.equality("fn")], TARGET)
        assert similar.subsumes(equal)
        assert not equal.subsumes(similar)


class TestDerivation:
    def test_tutorial_rcks_are_derived(self):
        rcks = derive_rcks(tutorial_rules(), TARGET)
        signatures = {
            tuple(sorted((c.left_attribute, c.operator) for c in rck.comparators))
            for rck in rcks
        }
        # rck1 = ([email, addr] ‖ [=, =])
        assert (("addr", "="), ("email", "=")) in signatures
        # rck2 = ([ln, phn, fn] ‖ [=, =, ≈])
        assert (("fn", "~"), ("ln", "="), ("phn", "=")) in signatures

    def test_derived_keys_are_minimal(self):
        rcks = derive_rcks(tutorial_rules(), TARGET)
        for i, first in enumerate(rcks):
            for second in rcks[i + 1:]:
                assert not first.subsumes(second)
                assert not second.subsumes(first)

    def test_closure_computation(self):
        rules = tutorial_rules()
        matched = concluded_matches([Comparator.equality("email"),
                                     Comparator.equality("addr")], rules)
        assert ("fn", "fn") in matched and ("phn", "phn") in matched

    def test_entails_target(self):
        rules = tutorial_rules()
        assert entails_target([Comparator.equality("email"), Comparator.equality("addr")],
                              rules, [(a, a) for a in TARGET])
        assert not entails_target([Comparator.equality("email")],
                                  rules, [(a, a) for a in TARGET])

    def test_no_rules_rejected(self):
        with pytest.raises(MatchingError):
            derive_rcks([], TARGET)

    def test_names_assigned(self):
        rcks = derive_rcks(tutorial_rules(), TARGET)
        assert rcks[0].name == "rck1"


class TestRecordMatcher:
    @pytest.fixture
    def workload(self):
        return CardBillingGenerator(seed=5).generate(holders=60, dirty_rate=0.35)

    @pytest.fixture
    def rcks(self):
        return derive_rcks(tutorial_rules(), TARGET)

    def test_rcks_beat_exact_key_on_dirty_data(self, workload, rcks):
        exact_key = [RelativeCandidateKey.build(
            [Comparator.equality(a) for a in TARGET], TARGET, name="exact")]
        exact = RecordMatcher(workload.card, workload.billing, exact_key)
        derived = RecordMatcher(workload.card, workload.billing, rcks)
        exact_quality = evaluate_matching(exact.matched_pairs(), workload.true_matches)
        derived_quality = evaluate_matching(derived.matched_pairs(), workload.true_matches)
        assert derived_quality.recall > exact_quality.recall
        assert derived_quality.precision >= 0.95

    def test_blocking_reduces_candidate_pairs(self, workload, rcks):
        unblocked = RecordMatcher(workload.card, workload.billing, rcks)
        blocked = RecordMatcher(workload.card, workload.billing, rcks, blocking=("phn", "phn"))
        unblocked.match()
        blocked.match()
        assert blocked.candidate_pairs_examined < unblocked.candidate_pairs_examined

    def test_matches_by_rck_breakdown(self, workload, rcks):
        matcher = RecordMatcher(workload.card, workload.billing, rcks)
        breakdown = matcher.matches_by_rck()
        assert sum(breakdown.values()) == len(matcher.matched_pairs())

    def test_unknown_attribute_rejected(self, workload):
        bad = [RelativeCandidateKey.build([Comparator.equality("ghost")], TARGET)]
        with pytest.raises(MatchingError):
            RecordMatcher(workload.card, workload.billing, bad)

    def test_bad_blocking_attribute_rejected(self, workload, rcks):
        with pytest.raises(MatchingError):
            RecordMatcher(workload.card, workload.billing, rcks, blocking=("ghost", "phn"))

    def test_needs_at_least_one_rck(self, workload):
        with pytest.raises(MatchingError):
            RecordMatcher(workload.card, workload.billing, [])


class TestEvaluation:
    def test_counts(self):
        quality = evaluate_matching({(1, 1), (2, 2), (3, 9)}, {(1, 1), (2, 2), (4, 4)})
        assert quality.true_positives == 2
        assert quality.false_positives == 1
        assert quality.false_negatives == 1
        assert 0 < quality.precision < 1 and 0 < quality.recall < 1

    def test_perfect_and_empty(self):
        perfect = evaluate_matching({(1, 1)}, {(1, 1)})
        assert perfect.f1 == 1.0
        empty = evaluate_matching(set(), set())
        assert empty.precision == 1.0 and empty.recall == 1.0
