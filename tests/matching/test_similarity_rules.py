"""Tests for string similarity functions and matching rules/comparators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MatchingError
from repro.matching.rules import Comparator, MatchingRule
from repro.matching.similarity import (
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    normalized_edit_similarity,
    qgram_jaccard_similarity,
    similarity,
    token_jaccard_similarity,
)
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import NULL

text = st.text(alphabet=st.characters(whitelist_categories=("Ll", "Nd")), max_size=12)


class TestLevenshtein:
    def test_known_distances(self):
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("flaw", "lawn") == 2
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "abc") == 0

    @given(text, text)
    def test_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(text, text)
    def test_bounds(self, a, b):
        d = levenshtein_distance(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(text, text, text)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= (
            levenshtein_distance(a, b) + levenshtein_distance(b, c))


class TestSimilarityFunctions:
    def test_identity_is_one(self):
        for function in (normalized_edit_similarity, jaro_similarity,
                         jaro_winkler_similarity, qgram_jaccard_similarity,
                         token_jaccard_similarity):
            assert function("mountain ave", "mountain ave") == 1.0

    def test_disjoint_strings_score_low(self):
        assert normalized_edit_similarity("abc", "xyz") == 0.0
        assert jaro_similarity("abc", "xyz") == 0.0
        assert qgram_jaccard_similarity("abc", "xyz") == 0.0

    def test_jaro_winkler_rewards_shared_prefix(self):
        assert jaro_winkler_similarity("michael", "michel") > jaro_similarity("michael", "michel")

    def test_nickname_is_similar(self):
        assert similarity("mike", "michael", "jaro_winkler") > 0.7

    def test_token_similarity_for_addresses(self):
        assert token_jaccard_similarity("10 mountain avenue", "mountain avenue 10") == 1.0

    def test_null_handling(self):
        assert similarity(NULL, NULL) == 1.0
        assert similarity(NULL, "x") == 0.0

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            similarity("a", "b", "sound-of-music")

    @given(text, text)
    def test_all_similarities_are_in_unit_interval(self, a, b):
        for method in ("edit", "jaro", "jaro_winkler", "qgram", "token"):
            value = similarity(a, b, method)
            assert 0.0 <= value <= 1.0 + 1e-12

    @given(text, text)
    def test_edit_similarity_symmetry(self, a, b):
        assert normalized_edit_similarity(a, b) == pytest.approx(
            normalized_edit_similarity(b, a))


class TestComparatorsAndRules:
    @pytest.fixture
    def rows(self):
        schema = RelationSchema("r", [Attribute("fn"), Attribute("ln"), Attribute("phn")])
        relation = Relation.from_dicts(schema, [
            {"fn": "michael", "ln": "smith", "phn": "555"},
            {"fn": "mike", "ln": "smith", "phn": "555"},
            {"fn": "anna", "ln": "jones", "phn": "777"},
        ])
        return relation.tuples()

    def test_equality_comparator(self, rows):
        comparator = Comparator.equality("ln")
        assert comparator.matches_pair(rows[0], rows[1])
        assert not comparator.matches_pair(rows[0], rows[2])

    def test_similarity_comparator(self, rows):
        comparator = Comparator.similar("fn", threshold=0.75)
        assert comparator.matches_pair(rows[0], rows[1])
        assert not comparator.matches_pair(rows[0], rows[2])

    def test_null_never_matches(self, rows):
        comparator = Comparator.equality("fn")
        assert not comparator.compare(NULL, NULL)

    def test_invalid_operator_rejected(self):
        with pytest.raises(MatchingError):
            Comparator("a", "b", operator="!")
        with pytest.raises(MatchingError):
            Comparator("a", "b", operator="~", threshold=0.0)

    def test_rule_applies(self, rows):
        rule = MatchingRule.build(
            [Comparator.equality("ln"), Comparator.similar("fn", threshold=0.75)],
            ["fn", "ln", "phn"], name="r1")
        assert rule.applies_to(rows[0], rows[1])
        assert not rule.applies_to(rows[0], rows[2])
        assert rule.concluded_pairs() == (("fn", "fn"), ("ln", "ln"), ("phn", "phn"))

    def test_rule_needs_comparators(self):
        with pytest.raises(MatchingError):
            MatchingRule.build([], ["fn"])

    def test_rule_conclusion_arity_checked(self):
        with pytest.raises(MatchingError):
            MatchingRule((Comparator.equality("a"),), ("x", "y"), ("x",))
