"""Shared fixtures for the observability test suite."""

import pytest

from repro import obs


@pytest.fixture
def obs_state():
    """Save/restore the process-wide obs flags and registry around a test."""
    saved_enabled, saved_trace = obs.enabled, obs.trace_enabled
    obs.reset()
    yield
    obs.enabled, obs.trace_enabled = saved_enabled, saved_trace
    obs.reset()
