"""Cache hit/miss/invalidate counters across the caching layers.

Each test drives a cache through hit, miss and (where applicable)
mutation-driven invalidation, asserting the obs counters move exactly
with the cache's behaviour.
"""

import pytest

from repro import obs
from repro.discovery.partitions import PartitionProvider
from repro.relational.index import HashIndex
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema

SCHEMA = RelationSchema("r", [Attribute("a"), Attribute("b"), Attribute("c")])


@pytest.fixture
def relation():
    r = Relation(SCHEMA)
    for i in range(10):
        r.insert([f"a{i % 2}", f"b{i % 3}", f"c{i}"])
    return r


@pytest.fixture(autouse=True)
def enabled_obs(obs_state):
    obs.enable()


class TestPartitionCache:
    def test_hit_miss_and_mutation_invalidation(self, relation):
        provider = PartitionProvider(relation)
        provider.partition(frozenset(["a"]))
        misses_after_first = obs.counter("cache.partition.miss")
        assert misses_after_first >= 1

        provider.partition(frozenset(["a"]))
        assert obs.counter("discovery.partition.cache_hit") >= 1

        # mutation bumps the relation version: the cache clears on next access
        relation.update(0, "a", "a9")
        provider.partition(frozenset(["a"]))
        assert obs.counter("cache.partition.invalidate") >= 1
        assert obs.counter("cache.partition.miss") > misses_after_first

    def test_partition_product_vs_scan(self, relation):
        provider = PartitionProvider(relation)
        provider.partition(frozenset(["a"]))
        provider.partition(frozenset(["b"]))
        scans = obs.counter("discovery.partition.scan")
        assert scans >= 2
        # the pair composes from the cached singletons: product, not scan
        provider.partition(frozenset(["a", "b"]))
        assert obs.counter("discovery.partition.product") >= 1
        assert obs.counter("discovery.partition.scan") == scans


class TestColumnCaches:
    def test_matcher_miss_then_hit(self, relation):
        column = relation.columns.column("a")
        column.matcher("k", lambda value: value == "a0")
        assert obs.counter("cache.matcher.miss") == 1
        column.matcher("k", lambda value: value == "a0")
        assert obs.counter("cache.matcher.hit") == 1

    def test_order_build_then_reuse(self, relation):
        column = relation.columns.column("a")
        column.order()
        assert obs.counter("cache.order.build") == 1
        column.order()
        assert obs.counter("cache.order.reuse") == 1

    def test_bridge_build_valid_and_rebuilt(self, relation):
        other = Relation(SCHEMA.renamed_relation("s"))
        for i in range(4):
            other.insert([f"a{i % 2}", f"b{i}", f"c{i}"])
        source = relation.columns.column("a")
        target = other.columns.column("a")

        source.bridge_to(target)
        assert obs.counter("cache.bridge.build") == 1
        source.bridge_to(target)
        assert obs.counter("cache.bridge.valid") == 1

        # interning a new value in the target dictionary stales the bridge
        other.update(0, "a", "a7")
        source.bridge_to(target)
        assert obs.counter("cache.bridge.rebuilt") == 1


class TestHashIndexCounter:
    def test_rebuild_counted(self, relation):
        index = HashIndex(relation, ["a"])
        built = obs.counter("cache.index.rebuild")
        assert built >= 1
        # mutation stales the index; consumers rebuild before reading
        relation.update(0, "a", "a5")
        assert index.is_stale()
        index.rebuild()
        assert obs.counter("cache.index.rebuild") == built + 1
