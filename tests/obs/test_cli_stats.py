"""CLI surface tests for --explain and --stats."""

import json

import pytest

from repro import obs
from repro.semandaq.cli import main as semandaq_main

CSV = """name,city,cc
alice,edi,uk
bob,nyc,us
carol,nyc,us
dave,edi,uk
erin,nyc,us
frank,edi,uk
"""


@pytest.fixture
def data_csv(tmp_path):
    path = tmp_path / "customer.csv"
    path.write_text(CSV, encoding="utf-8")
    return path


class TestExplainFlag:
    def test_prints_plan_report(self, data_csv, capsys, obs_state):
        code = semandaq_main([str(data_csv),
                              "--sql", "SELECT name FROM customer WHERE city = 'nyc'",
                              "--explain"])
        assert code == 0
        out = capsys.readouterr().out
        assert "plan: code (code-native single-table scan on dictionary codes)" in out
        assert "push-down filters:" in out
        assert "(3 row(s))" in out

    def test_explain_requires_sql(self, data_csv, obs_state):
        with pytest.raises(SystemExit):
            semandaq_main([str(data_csv), "--explain", "--discover"])


class TestStatsFlag:
    def test_writes_snapshot_with_cache_hits_and_timings(self, data_csv,
                                                         tmp_path, capsys,
                                                         obs_state):
        stats_path = tmp_path / "out.json"
        code = semandaq_main([str(data_csv), "--discover", "--min-support", "2",
                              "--sql", "SELECT city, COUNT(*) AS n FROM customer "
                                       "GROUP BY city",
                              "--stats", str(stats_path)])
        assert code == 0
        snapshot = json.loads(stats_path.read_text(encoding="utf-8"))
        assert snapshot["enabled"] is True
        counters = snapshot["counters"]
        # at least one nonzero cache-hit counter
        hit_counters = {name: value for name, value in counters.items()
                        if ".hit" in name or name.endswith(".cache_hit")}
        assert any(value > 0 for value in hit_counters.values())
        # engine task timings are present
        assert "engine.task.sql_scan.seconds" in snapshot["histograms"]

    def test_stats_to_stdout(self, data_csv, capsys, obs_state):
        code = semandaq_main([str(data_csv),
                              "--sql", "SELECT COUNT(*) AS n FROM customer",
                              "--stats", "-"])
        assert code == 0
        out = capsys.readouterr().out
        payload = out[out.index("{"):]
        snapshot = json.loads(payload)
        assert snapshot["counters"].get("sql.plan.code") == 1

    def test_prometheus_rendering_of_run(self, data_csv, capsys, obs_state):
        semandaq_main([str(data_csv),
                       "--sql", "SELECT name FROM customer WHERE city = 'nyc'",
                       "--stats", "-"])
        text = obs.prometheus()
        assert "repro_sql_plan_code_total 1" in text
