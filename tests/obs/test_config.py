"""Tests for the centralised REPRO_* environment parsing (repro.config)."""

import pytest

from repro import config, obs
from repro.config import (
    ConfigError,
    env_choice,
    env_flag,
    env_int,
)
from repro.engine.executor import resolve_pool
from repro.errors import ReproError


class TestEnvFlag:
    @pytest.mark.parametrize("raw", ["1", "true", "YES", " On "])
    def test_truthy(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_OBS", raw)
        assert env_flag("REPRO_OBS") is True

    @pytest.mark.parametrize("raw", ["0", "false", "No", "off", ""])
    def test_falsy(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_OBS", raw)
        assert env_flag("REPRO_OBS") is False

    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert env_flag("REPRO_OBS") is False
        assert env_flag("REPRO_OBS", default=True) is True

    def test_malformed_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "maybe")
        with pytest.raises(ConfigError, match="REPRO_OBS"):
            env_flag("REPRO_OBS")


class TestEnvInt:
    def test_unset_and_empty_are_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert env_int("REPRO_WORKERS") is None
        monkeypatch.setenv("REPRO_WORKERS", "  ")
        assert env_int("REPRO_WORKERS") is None

    def test_parses_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", " 4 ")
        assert env_int("REPRO_WORKERS") == 4

    def test_malformed_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "four")
        with pytest.raises(ConfigError, match="not an integer"):
            env_int("REPRO_WORKERS")

    def test_minimum_enforced(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ConfigError, match="at least 1"):
            env_int("REPRO_WORKERS", minimum=1)


class TestEnvChoice:
    def test_lowercases_and_validates(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "Parallel")
        assert env_choice("REPRO_ENGINE", ("sequential", "serial", "parallel")) \
            == "parallel"

    def test_unknown_raises_with_choices(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "warp")
        with pytest.raises(ConfigError, match="sequential, serial, parallel"):
            env_choice("REPRO_ENGINE", ("sequential", "serial", "parallel"))


class TestConfigErrorCompatibility:
    def test_is_value_error_and_repro_error(self):
        assert issubclass(ConfigError, ValueError)
        assert issubclass(ConfigError, ReproError)

    def test_resolve_pool_rejects_malformed_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "parallel")
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_pool(None, None)

    def test_resolve_pool_rejects_malformed_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "warp")
        with pytest.raises(ValueError, match="REPRO_ENGINE"):
            resolve_pool(None, None)

    def test_resolve_pool_rejects_malformed_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "parallel")
        monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "-5")
        with pytest.raises(ValueError, match="REPRO_PARALLEL_THRESHOLD"):
            resolve_pool(None, None)


class TestObsEnvWiring:
    def test_configure_from_env(self, monkeypatch):
        saved_enabled, saved_trace = obs.enabled, obs.trace_enabled
        try:
            monkeypatch.setenv(config.OBS_ENV, "1")
            monkeypatch.setenv(config.OBS_TRACE_ENV, "1")
            obs.configure_from_env()
            assert obs.enabled and obs.trace_enabled
            monkeypatch.setenv(config.OBS_ENV, "0")
            monkeypatch.setenv(config.OBS_TRACE_ENV, "0")
            obs.configure_from_env()
            assert not obs.enabled and not obs.trace_enabled
        finally:
            obs.enabled, obs.trace_enabled = saved_enabled, saved_trace
