"""Tests for the centralised REPRO_* environment parsing (repro.config)."""

import pytest

from repro import config, obs
from repro.config import (
    ConfigError,
    env_choice,
    env_flag,
    env_float,
    env_int,
)
from repro.engine.executor import (
    DEFAULT_TASK_RETRIES,
    DEFAULT_TASK_TIMEOUT,
    MultiprocessingPool,
    resolve_pool,
)
from repro.errors import ReproError


class TestEnvFlag:
    @pytest.mark.parametrize("raw", ["1", "true", "YES", " On "])
    def test_truthy(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_OBS", raw)
        assert env_flag("REPRO_OBS") is True

    @pytest.mark.parametrize("raw", ["0", "false", "No", "off", ""])
    def test_falsy(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_OBS", raw)
        assert env_flag("REPRO_OBS") is False

    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert env_flag("REPRO_OBS") is False
        assert env_flag("REPRO_OBS", default=True) is True

    def test_malformed_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "maybe")
        with pytest.raises(ConfigError, match="REPRO_OBS"):
            env_flag("REPRO_OBS")


class TestEnvInt:
    def test_unset_and_empty_are_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert env_int("REPRO_WORKERS") is None
        monkeypatch.setenv("REPRO_WORKERS", "  ")
        assert env_int("REPRO_WORKERS") is None

    def test_parses_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", " 4 ")
        assert env_int("REPRO_WORKERS") == 4

    def test_malformed_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "four")
        with pytest.raises(ConfigError, match="not an integer"):
            env_int("REPRO_WORKERS")

    def test_minimum_enforced(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ConfigError, match="at least 1"):
            env_int("REPRO_WORKERS", minimum=1)


class TestEnvFloat:
    def test_unset_and_empty_are_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
        assert env_float("REPRO_TASK_TIMEOUT") is None
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "  ")
        assert env_float("REPRO_TASK_TIMEOUT") is None

    def test_parses_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", " 2.5 ")
        assert env_float("REPRO_TASK_TIMEOUT") == 2.5

    def test_malformed_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "soon")
        with pytest.raises(ConfigError, match="not a number"):
            env_float("REPRO_TASK_TIMEOUT")

    def test_minimum_enforced(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "-1")
        with pytest.raises(ConfigError, match="at least 0"):
            env_float("REPRO_TASK_TIMEOUT", minimum=0.0)


class TestFaultsParsing:
    def test_unset_is_empty(self, monkeypatch):
        monkeypatch.delenv(config.FAULTS_ENV, raising=False)
        assert config.faults_default() == {}

    def test_parses_kind_rate_pairs(self, monkeypatch):
        monkeypatch.setenv(config.FAULTS_ENV, "raise:0.1, crash:0.05,hang:1")
        assert config.faults_default() == \
            {"raise": 0.1, "crash": 0.05, "hang": 1.0}

    def test_unknown_kind_raises(self, monkeypatch):
        monkeypatch.setenv(config.FAULTS_ENV, "explode:0.1")
        with pytest.raises(ConfigError, match="raise, crash, hang"):
            config.faults_default()

    def test_missing_rate_raises(self, monkeypatch):
        monkeypatch.setenv(config.FAULTS_ENV, "raise")
        with pytest.raises(ConfigError, match="kind:rate"):
            config.faults_default()

    def test_non_numeric_rate_raises(self, monkeypatch):
        monkeypatch.setenv(config.FAULTS_ENV, "raise:often")
        with pytest.raises(ConfigError, match="not a number"):
            config.faults_default()

    def test_out_of_range_rate_raises(self, monkeypatch):
        monkeypatch.setenv(config.FAULTS_ENV, "crash:1.5")
        with pytest.raises(ConfigError, match="probability"):
            config.faults_default()

    def test_seed_defaults_to_zero(self, monkeypatch):
        monkeypatch.delenv(config.FAULTS_SEED_ENV, raising=False)
        assert config.faults_seed_default() == 0
        monkeypatch.setenv(config.FAULTS_SEED_ENV, "42")
        assert config.faults_seed_default() == 42


class TestSupervisionKnobs:
    def test_pool_reads_env_defaults(self, monkeypatch):
        monkeypatch.setenv(config.TASK_TIMEOUT_ENV, "2.5")
        monkeypatch.setenv(config.TASK_RETRIES_ENV, "5")
        pool = MultiprocessingPool(workers=2)
        assert pool.task_timeout == 2.5
        assert pool.task_retries == 5

    def test_zero_timeout_means_unbounded(self, monkeypatch):
        monkeypatch.delenv(config.TASK_RETRIES_ENV, raising=False)
        monkeypatch.setenv(config.TASK_TIMEOUT_ENV, "0")
        assert MultiprocessingPool(workers=2).task_timeout is None

    def test_explicit_knobs_beat_env(self, monkeypatch):
        monkeypatch.setenv(config.TASK_TIMEOUT_ENV, "2.5")
        monkeypatch.setenv(config.TASK_RETRIES_ENV, "5")
        pool = MultiprocessingPool(workers=2, task_timeout=9.0, task_retries=1)
        assert pool.task_timeout == 9.0
        assert pool.task_retries == 1

    def test_module_defaults_apply_when_unset(self, monkeypatch):
        monkeypatch.delenv(config.TASK_TIMEOUT_ENV, raising=False)
        monkeypatch.delenv(config.TASK_RETRIES_ENV, raising=False)
        pool = MultiprocessingPool(workers=2)
        assert pool.task_timeout == DEFAULT_TASK_TIMEOUT
        assert pool.task_retries == DEFAULT_TASK_RETRIES

    def test_fallback_flag_reaches_the_pool(self, monkeypatch):
        monkeypatch.delenv(config.TASK_TIMEOUT_ENV, raising=False)
        monkeypatch.delenv(config.TASK_RETRIES_ENV, raising=False)
        monkeypatch.setenv(config.TASK_FALLBACK_ENV, "0")
        assert MultiprocessingPool(workers=2).serial_fallback is False
        monkeypatch.delenv(config.TASK_FALLBACK_ENV)
        assert MultiprocessingPool(workers=2).serial_fallback is True

    def test_malformed_timeout_raises(self, monkeypatch):
        monkeypatch.setenv(config.TASK_TIMEOUT_ENV, "forever")
        with pytest.raises(ConfigError, match=config.TASK_TIMEOUT_ENV):
            MultiprocessingPool(workers=2)


class TestEnvChoice:
    def test_lowercases_and_validates(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "Parallel")
        assert env_choice("REPRO_ENGINE", ("sequential", "serial", "parallel")) \
            == "parallel"

    def test_unknown_raises_with_choices(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "warp")
        with pytest.raises(ConfigError, match="sequential, serial, parallel"):
            env_choice("REPRO_ENGINE", ("sequential", "serial", "parallel"))


class TestConfigErrorCompatibility:
    def test_is_value_error_and_repro_error(self):
        assert issubclass(ConfigError, ValueError)
        assert issubclass(ConfigError, ReproError)

    def test_resolve_pool_rejects_malformed_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "parallel")
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_pool(None, None)

    def test_resolve_pool_rejects_malformed_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "warp")
        with pytest.raises(ValueError, match="REPRO_ENGINE"):
            resolve_pool(None, None)

    def test_resolve_pool_rejects_malformed_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "parallel")
        monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "-5")
        with pytest.raises(ValueError, match="REPRO_PARALLEL_THRESHOLD"):
            resolve_pool(None, None)


class TestObsEnvWiring:
    def test_configure_from_env(self, monkeypatch):
        saved_enabled, saved_trace = obs.enabled, obs.trace_enabled
        try:
            monkeypatch.setenv(config.OBS_ENV, "1")
            monkeypatch.setenv(config.OBS_TRACE_ENV, "1")
            obs.configure_from_env()
            assert obs.enabled and obs.trace_enabled
            monkeypatch.setenv(config.OBS_ENV, "0")
            monkeypatch.setenv(config.OBS_TRACE_ENV, "0")
            obs.configure_from_env()
            assert not obs.enabled and not obs.trace_enabled
        finally:
            obs.enabled, obs.trace_enabled = saved_enabled, saved_trace
