"""Golden tests for the SQL EXPLAIN surface."""

import pytest

from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.sql.engine import SQLEngine
from repro.relational.sql.explain import format_explain
from repro.semandaq.session import SemandaqSession

CUSTOMER = RelationSchema("customer", [
    Attribute("name"), Attribute("city"), Attribute("cc"),
])

ORDERS = RelationSchema("orders", [
    Attribute("cust"), Attribute("city"),
])


@pytest.fixture
def database():
    db = Database()
    customer = Relation(CUSTOMER)
    for i in range(8):
        customer.insert([f"n{i}", "nyc" if i % 2 else "edi",
                         "01" if i % 2 else "44"])
    db.add(customer)
    orders = Relation(ORDERS)
    for i in range(4):
        orders.insert([f"n{i}", "nyc"])
    db.add(orders)
    return db


@pytest.fixture
def sql(database):
    return SQLEngine(database)


class TestCodePlanExplain:
    def test_reports_plan_and_pruning(self, sql):
        text = sql.explain("SELECT name FROM customer WHERE city = 'nyc'")
        assert text.splitlines()[0] == \
            "plan: code (code-native single-table scan on dictionary codes)"
        assert "push-down filters:" in text
        assert "customer.city: code set of 1, 8 rows in, 4 pruned, 4 out" in text

    def test_conjuncts_prune_cumulatively(self, sql):
        text = sql.explain(
            "SELECT name FROM customer WHERE city = 'nyc' AND cc = '01'")
        assert "customer.city: code set of 1, 8 rows in, 4 pruned, 4 out" in text
        assert "customer.cc: code set of 1, 4 rows in, 0 pruned, 4 out" in text

    def test_last_explain_dict(self, sql):
        sql.explain("SELECT name FROM customer WHERE city = 'nyc'")
        info = sql.last_explain
        assert info["plan"] == "code"
        assert info["filters"][0]["rows_pruned"] == 4
        assert info["why_not_code"] == []


class TestJoinPlanExplain:
    QUERY = ("SELECT c.name FROM customer c JOIN orders o "
             "ON c.name = o.cust WHERE c.city = 'nyc'")

    def test_reports_join_shape(self, sql):
        text = sql.explain(self.QUERY)
        assert text.splitlines()[0] == \
            "plan: join (code-native hash join on dictionary codes)"
        assert "hash join: build o (4 rows, 4 buckets), " \
               "probe c (8 rows), 1 equi key(s)" in text
        assert "why not code-native scan:" in text
        assert "query reads more than one table" in text

    def test_join_info_dict(self, sql):
        sql.explain(self.QUERY)
        join = sql.last_explain["join"]
        assert join == {"build_side": "o", "probe_side": "c",
                        "build_rows": 4, "probe_rows": 8,
                        "buckets": 4, "key_pairs": 1}


REGIONS = RelationSchema("regions", [
    Attribute("city"), Attribute("region"),
])


class TestMultiwayPlanExplain:
    QUERY = ("SELECT c.name, r.region FROM customer c, orders o, regions r "
             "WHERE c.name = o.cust AND o.city = r.city")

    @pytest.fixture
    def sql3(self, database):
        regions = Relation(REGIONS)
        regions.insert(["nyc", "us"])
        regions.insert(["edi", "uk"])
        database.add(regions)
        return SQLEngine(database)

    def test_reports_variable_order_and_candidates(self, sql3):
        text = sql3.explain(self.QUERY)
        assert text.splitlines()[0] == \
            "plan: multiway (code-native leapfrog multiway join on rank arrays)"
        assert "multiway join: c ⋈ o ⋈ r, 2 join variable(s)" in text
        assert "variable order:" in text
        lines = [line for line in text.splitlines()
                 if line.startswith(("  1.", "  2."))]
        assert len(lines) == 2
        assert any("c.name = o.cust" in line for line in lines)
        assert any("o.city = r.city" in line for line in lines)
        assert all("candidate(s)" in line for line in lines)

    def test_multiway_info_dict(self, sql3):
        sql3.explain(self.QUERY)
        block = sql3.last_explain["multiway"]
        assert block["tables"] == ["c", "o", "r"]
        assert block["tuples"] == 4
        assert [sorted(entry) for entry in map(dict.keys, block["order"])] == \
            [["candidates", "estimate", "fd_implied", "members"]] * 2

    def test_unsupported_statement_reports_multiway_reason(self, sql3):
        text = sql3.explain(
            "SELECT c.name, o.city, r.region FROM customer c, orders o, regions r "
            "WHERE c.name = o.cust AND LENGTH(o.city) = 3")
        assert text.splitlines()[0] == \
            "plan: row (row-at-a-time reference path)"
        assert "why not code-native multiway join:" in text
        assert "neither an equi key nor a single-side code-set test" in text


class TestFactorisedPlanExplain:
    QUERY = ("SELECT c.city, COUNT(*) AS n FROM customer c "
             "JOIN orders o ON c.name = o.cust GROUP BY city")

    def test_reports_folds_instead_of_tuples(self, sql):
        text = sql.explain(self.QUERY)
        assert text.splitlines()[0] == \
            "plan: factorised (code-native join with factorised (semiring) " \
            "aggregates)"
        block = sql.last_explain["factorised"]
        assert (f"factorised aggregates: {block['partials']} semiring fold(s) "
                f"over 2 group(s) instead of 4 enumerated tuple(s)") in text
        # the join shape is still part of the report
        assert "hash join: build o (4 rows, 4 buckets), " \
               "probe c (8 rows), 1 equi key(s)" in text

    def test_factorised_info_dict(self, sql):
        sql.explain(self.QUERY)
        block = sql.last_explain["factorised"]
        assert block["kind"] == "join"
        assert block["groups"] == 2
        assert block["tuples"] == 4
        assert block["partials"] >= 2
        assert sql.last_explain["why_not_factorised"] == []

    def test_enumerated_plans_report_why_not_factorised(self, sql):
        text = sql.explain(TestJoinPlanExplain.QUERY)
        assert text.splitlines()[0] == \
            "plan: join (code-native hash join on dictionary codes)"
        assert "why not factorised aggregates:" in text
        assert "statement has no aggregates" in text


class TestRowPlanExplain:
    def test_reports_reasons_for_both_paths(self, sql):
        text = sql.explain(
            "SELECT name, 1 + 1 AS x FROM customer WHERE city = 'nyc'")
        assert text.splitlines()[0] == \
            "plan: row (row-at-a-time reference path)"
        assert "why not code-native scan:" in text
        assert "select item (1 + 1) is computed" in text
        assert "why not code-native join:" in text
        assert "query does not read exactly two tables" in text
        assert "why not code-native multiway join:" in text
        assert "query reads fewer than three tables" in text

    def test_row_path_still_records_pushdown(self, sql):
        text = sql.explain(
            "SELECT name, 1 + 1 AS x FROM customer WHERE city = 'nyc'")
        assert "customer.city [(city = 'nyc')]: " \
               "code set of 1, 8 rows in, 4 pruned, 4 out" in text


class TestUnionExplain:
    def test_union_nests_per_select(self, sql):
        text = sql.explain("SELECT name FROM customer WHERE city = 'nyc' "
                           "UNION SELECT cust FROM orders")
        lines = text.splitlines()
        assert lines[0] == "plan: union"
        assert "select 1:" in lines and "select 2:" in lines
        assert sum("plan: code" in line for line in lines) == 2


class TestSurfaces:
    def test_session_sql_explain_returns_pair(self, database):
        session = SemandaqSession(database)
        result, text = session.sql(
            "SELECT name FROM customer WHERE city = 'nyc'", explain=True)
        assert len(result) == 4
        assert text.startswith("plan: code")

    def test_session_sql_without_explain_unchanged(self, database):
        session = SemandaqSession(database)
        result = session.sql("SELECT name FROM customer WHERE city = 'nyc'")
        assert len(result) == 4

    def test_format_explain_handles_missing_reasons(self):
        text = format_explain({"plan": "row", "filters": []})
        assert "(no reason recorded)" in text
