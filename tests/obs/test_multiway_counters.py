"""Obs coverage of the multiway-join path.

The executor counts every multiway plan choice (``sql.plan.multiway``)
and records each join variable's intersection candidate count into the
``sql.multiway.candidates`` histogram; the chunked engine spans the
probe and fold phases.  These tests drive 3-table statements through the
SQL engine and assert the metrics move exactly with plan selection.
"""

import pytest

from repro import obs
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema

ORDERS = RelationSchema("orders", [Attribute("city"), Attribute("zip")])
ZIPS = RelationSchema("zips", [Attribute("zip"), Attribute("region")])
REGIONS = RelationSchema("regions", [Attribute("region"), Attribute("name")])


@pytest.fixture
def database():
    db = Database()
    db.add(Relation.from_rows(ORDERS, [
        ("edi", "EH8"), ("nyc", "10012"), ("sfo", "94107"), ("edi", "EH8")]))
    db.add(Relation.from_rows(ZIPS, [
        ("EH8", "uk"), ("10012", "us"), ("94107", "us")]))
    db.add(Relation.from_rows(REGIONS, [("uk", "europe"), ("us", "america")]))
    return db


@pytest.fixture(autouse=True)
def enabled_obs(obs_state):
    obs.enable()


QUERY = ("SELECT o.city, r.name FROM orders o, zips z, regions r "
         "WHERE o.zip = z.zip AND z.region = r.region")


class TestMultiwayPlanCounter:
    def test_each_multiway_select_counts_once(self, database):
        from repro.relational.sql.engine import SQLEngine

        engine = SQLEngine(database)
        engine.query(QUERY)
        assert engine.last_plan == "multiway"
        assert obs.counter("sql.plan.multiway") == 1
        engine.query(QUERY)
        assert obs.counter("sql.plan.multiway") == 2
        # 2-table joins and single-table scans leave the counter alone
        engine.query("SELECT o.city, z.region FROM orders o JOIN zips z "
                     "ON o.zip = z.zip")
        assert engine.last_plan == "join"
        engine.query("SELECT city FROM orders")
        assert engine.last_plan == "code"
        assert obs.counter("sql.plan.multiway") == 2

    def test_row_fallback_does_not_count(self, database):
        from repro.relational.sql.engine import SQLEngine

        engine = SQLEngine(database)
        engine.query("SELECT o.city, z.region, r.name "
                     "FROM orders o, zips z, regions r "
                     "WHERE o.zip = z.zip")  # disconnected: cross product
        assert engine.last_plan == "row"
        assert obs.counter("sql.plan.multiway") == 0
        assert obs.counter("sql.plan.row") == 1


class TestCandidateHistogram:
    def test_per_variable_candidate_counts_are_observed(self, database):
        from repro.relational.sql.engine import SQLEngine

        engine = SQLEngine(database)
        engine.query(QUERY)
        snapshot = obs.metrics()["histograms"]["sql.multiway.candidates"]
        # one observation per join variable (zip, region)
        assert snapshot["count"] == 2
        assert snapshot["min"] >= 0
        # the zip variable intersects to 3 codes, region to 2
        assert snapshot["total"] == 5

    def test_chunked_engine_spans_probe_and_fold(self, database, monkeypatch):
        # grouped statements normally factorise; force the enumerated
        # reference to keep the probe + fold spans covered
        monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "0")
        from repro.relational.sql import columnar
        from repro.relational.sql.engine import SQLEngine

        monkeypatch.setattr(columnar, "FACTORISE", False)
        engine = SQLEngine(database, engine="serial")
        engine.query(GROUPED_QUERY)
        assert engine.last_plan == "multiway"
        assert obs.counter("engine.multijoin.runs") == 1
        histograms = obs.metrics()["histograms"]
        assert histograms["span.sql.multiway.probe"]["count"] == 1
        assert histograms["span.sql.multiway.fold"]["count"] == 1


GROUPED_QUERY = ("SELECT r.name, COUNT(*) AS n "
                 "FROM orders o, zips z, regions r "
                 "WHERE o.zip = z.zip AND z.region = r.region "
                 "GROUP BY r.name")


class TestFactorisedCounters:
    def test_factorised_plan_counts_and_spans_the_fold(self, database,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "0")
        from repro.relational.sql.engine import SQLEngine

        engine = SQLEngine(database, engine="serial")
        engine.query(GROUPED_QUERY)
        assert engine.last_plan == "factorised"
        assert obs.counter("sql.plan.factorised") == 1
        # the factorised plan replaces the multiway one, not doubles it
        assert obs.counter("sql.plan.multiway") == 0
        assert obs.counter("engine.multijoin.runs") == 1
        histograms = obs.metrics()["histograms"]
        assert histograms["span.sql.factorised.fold"]["count"] == 1
        partials = histograms["sql.factorised.partials"]
        assert partials["count"] == 1
        assert partials["total"] >= 1
        # candidate counts still feed the shared histogram
        assert obs.metrics()["histograms"]["sql.multiway.candidates"]["count"] == 2

    def test_two_table_factorised_join_counts_and_observes_partials(self, database):
        from repro.relational.sql.engine import SQLEngine

        engine = SQLEngine(database)
        engine.query("SELECT z.region, COUNT(*) AS n FROM orders o "
                     "JOIN zips z ON o.zip = z.zip GROUP BY z.region")
        assert engine.last_plan == "factorised"
        assert obs.counter("sql.plan.factorised") == 1
        assert obs.counter("sql.plan.join") == 0
        assert obs.metrics()["histograms"]["sql.factorised.partials"]["count"] == 1
