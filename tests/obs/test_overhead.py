"""Overhead smoke: instrumented detection stays within 10% of disabled.

Timing assertions are inherently machine-sensitive, so this module only
asserts when ``REPRO_OVERHEAD_SMOKE=1`` (a dedicated CI step sets it);
the default tier-1 run executes the workload but skips the comparison.
"""

import os
import time

import pytest

from repro import obs
from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.detection.cfd_detect import CFDDetector

ROWS = 1000
BEST_OF = 5


def build_workload():
    generator = CustomerGenerator(seed=101)
    clean = generator.generate(ROWS)
    dirty = inject_noise(clean, rate=0.05,
                         attributes=["street", "city"], seed=ROWS).dirty
    return dirty, generator.canonical_cfds()


def best_of(callable_, repeats=BEST_OF):
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        timings.append(time.perf_counter() - start)
    return min(timings)


class TestOverhead:
    def test_detection_overhead_within_budget(self, obs_state):
        relation, cfds = build_workload()
        detector = CFDDetector(relation, cfds)

        obs.disable()
        off = best_of(detector.detect)
        obs.enable()
        on = best_of(detector.detect)

        if os.environ.get("REPRO_OVERHEAD_SMOKE") != "1":
            pytest.skip("timing assertion only runs with REPRO_OVERHEAD_SMOKE=1")
        # 10% relative budget plus 5ms absolute slack for tiny baselines
        assert on <= off * 1.10 + 0.005, (
            f"obs-enabled detection took {on:.4f}s vs {off:.4f}s disabled")
