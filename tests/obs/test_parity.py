"""Instrumentation parity: results are byte-identical with obs on or off.

The observability layer must never feed back into computation.  These
tests run detection, SQL (serial and on a real process pool) and repair
twice — collection off, then on — and require identical outputs, while
also asserting the second run actually recorded metrics.
"""

import pytest

from repro import obs
from repro.constraints.parse import parse_cfd
from repro.detection.cfd_detect import CFDDetector
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.sql.engine import SQLEngine
from repro.repair.batch_repair import BatchRepair

SCHEMA = RelationSchema("customer", [
    Attribute("cc"), Attribute("ac"), Attribute("city"), Attribute("zip"),
])

ROWS = [
    {"cc": "44", "ac": "131", "city": "edi", "zip": "EH8"},
    {"cc": "44", "ac": "131", "city": "ldn", "zip": "EH8"},
    {"cc": "01", "ac": "908", "city": "mh", "zip": "07974"},
    {"cc": "01", "ac": "908", "city": "nyc", "zip": "07974"},
    {"cc": "01", "ac": "212", "city": "nyc", "zip": "10012"},
    {"cc": "44", "ac": "131", "city": "edi", "zip": "EH8"},
]

CFD = parse_cfd("customer([cc='44', zip] -> [city])")


def fresh_relation():
    return Relation.from_dicts(SCHEMA, ROWS)


def fresh_database():
    database = Database()
    database.add(fresh_relation())
    return database


def detection_outcome(engine=None, workers=None):
    detector = CFDDetector(fresh_relation(), [CFD],
                           engine=engine, workers=workers)
    report = detector.detect()
    return sorted(tuple(v.tids) for v in report.violations)


def sql_outcome(engine=None, workers=None):
    sql = SQLEngine(fresh_database(), engine=engine, workers=workers)
    result = sql.query("SELECT city, COUNT(*) AS n FROM customer "
                       "WHERE cc = '44' GROUP BY city ORDER BY city")
    return [tuple(row.values) for row in result]


def repair_outcome():
    relation = fresh_relation()
    repair = BatchRepair(relation, [CFD]).repair()
    return sorted((c.tid, c.attribute, c.new_value) for c in repair.changes)


class TestParity:
    def test_detection_identical_on_and_off(self, obs_state):
        obs.disable()
        off = detection_outcome()
        assert obs.metrics()["counters"] == {}
        obs.enable()
        on = detection_outcome()
        assert on == off
        counters = obs.metrics()["counters"]
        assert counters.get("detect.cfd.violations", 0) >= 1

    def test_detection_identical_on_serial_engine(self, obs_state):
        obs.disable()
        off = detection_outcome(engine="serial")
        obs.enable()
        assert detection_outcome(engine="serial") == off
        assert obs.counter("engine.detect.runs") >= 1

    def test_detection_identical_on_process_pool(self, obs_state, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "0")
        obs.disable()
        off = detection_outcome(engine="parallel", workers=2)
        obs.enable()
        assert detection_outcome(engine="parallel", workers=2) == off

    def test_sql_identical_on_and_off(self, obs_state):
        obs.disable()
        off = sql_outcome()
        obs.enable()
        assert sql_outcome() == off
        assert obs.counter("sql.plan.code") >= 1
        histograms = obs.metrics()["histograms"]
        assert "engine.task.sql_scan.seconds" in histograms

    def test_sql_identical_on_process_pool(self, obs_state, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "0")
        obs.disable()
        off = sql_outcome(engine="parallel", workers=2)
        obs.enable()
        assert sql_outcome(engine="parallel", workers=2) == off
        assert obs.counter("engine.sql.runs") >= 1

    def test_repair_identical_on_and_off(self, obs_state):
        obs.disable()
        off = repair_outcome()
        obs.enable()
        assert repair_outcome() == off
        assert obs.counter("repair.passes") >= 1

    def test_explain_does_not_change_results(self, obs_state):
        sql = SQLEngine(fresh_database())
        query = ("SELECT city, COUNT(*) AS n FROM customer "
                 "WHERE cc = '44' GROUP BY city ORDER BY city")
        plain = [tuple(row.values) for row in sql.query(query)]
        explained = [tuple(row.values) for row in sql.query(query, explain=True)]
        assert explained == plain
