"""Unit tests for the repro.obs metrics registry, spans and facade."""

import pytest

from repro import obs
from repro.obs import Histogram, MetricsRegistry, _NOOP_SPAN


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestHistogram:
    def test_observe_accumulates(self):
        histogram = Histogram()
        for value in (2.0, 4.0, 6.0):
            histogram.observe(value)
        summary = histogram.snapshot()
        assert summary["count"] == 3
        assert summary["total"] == 12.0
        assert summary["mean"] == 4.0
        assert summary["min"] == 2.0
        assert summary["max"] == 6.0

    def test_empty_snapshot_is_zeroed(self):
        summary = Histogram().snapshot()
        assert summary == {"count": 0, "total": 0.0, "mean": 0.0,
                           "min": 0.0, "max": 0.0}


class TestRegistry:
    def test_counters(self, registry):
        registry.inc("cache.partition.hit")
        registry.inc("cache.partition.hit", 2)
        assert registry.counter("cache.partition.hit") == 3
        assert registry.counter("never.recorded") == 0

    def test_gauges_overwrite(self, registry):
        registry.gauge("discovery.lattice.level1.size", 4)
        registry.gauge("discovery.lattice.level1.size", 6)
        assert registry.snapshot()["gauges"] == {
            "discovery.lattice.level1.size": 6}

    def test_histograms_created_on_first_observe(self, registry):
        assert registry.histogram("engine.task.sql_scan.seconds") is None
        registry.observe("engine.task.sql_scan.seconds", 0.5)
        histogram = registry.histogram("engine.task.sql_scan.seconds")
        assert histogram is not None and histogram.count == 1

    def test_snapshot_sorts_names(self, registry):
        registry.inc("b.metric")
        registry.inc("a.metric")
        assert list(registry.snapshot()["counters"]) == ["a.metric", "b.metric"]

    def test_trace_is_bounded(self, registry):
        for index in range(obs.TRACE_LIMIT + 10):
            registry.record_trace("spam", 0.0, {"i": index})
        assert len(registry.snapshot()["trace"]) == obs.TRACE_LIMIT

    def test_reset_clears_everything(self, registry):
        registry.inc("a")
        registry.gauge("b", 1)
        registry.observe("c", 1.0)
        registry.record_trace("d", 0.0, {})
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "gauges": {},
                                       "histograms": {}, "trace": []}


class TestPrometheus:
    def test_counter_rendering(self, registry):
        registry.inc("cache.partition.hit", 5)
        text = registry.render_prometheus()
        assert "# TYPE repro_cache_partition_hit_total counter" in text
        assert "repro_cache_partition_hit_total 5" in text

    def test_gauge_and_histogram_rendering(self, registry):
        registry.gauge("discovery.candidate_fds", 12)
        registry.observe("engine.task.sql_scan.seconds", 0.25)
        registry.observe("engine.task.sql_scan.seconds", 0.75)
        text = registry.render_prometheus()
        assert "repro_discovery_candidate_fds 12" in text
        assert "# TYPE repro_engine_task_sql_scan_seconds summary" in text
        assert "repro_engine_task_sql_scan_seconds_count 2" in text
        assert "repro_engine_task_sql_scan_seconds_sum 1" in text
        assert "repro_engine_task_sql_scan_seconds_min 0.25" in text
        assert "repro_engine_task_sql_scan_seconds_max 0.75" in text

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render_prometheus() == ""


class TestSpans:
    def test_disabled_span_is_shared_noop(self, obs_state):
        obs.disable()
        assert obs.span("anything", tag=1) is _NOOP_SPAN
        assert obs.span("something.else") is _NOOP_SPAN
        with obs.span("not.recorded"):
            pass
        assert obs.metrics()["histograms"] == {}

    def test_enabled_span_records_histogram(self, obs_state):
        obs.enable()
        with obs.span("unit.test", relation="r"):
            pass
        histogram = obs.metrics()["histograms"]["span.unit.test"]
        assert histogram["count"] == 1
        assert histogram["min"] >= 0.0

    def test_trace_records_tags(self, obs_state):
        obs.enable(trace=True)
        with obs.span("unit.traced", relation="r"):
            pass
        entries = [entry for entry in obs.iter_trace()
                   if entry[0] == "unit.traced"]
        assert entries and entries[0][2] == {"relation": "r"}

    def test_facade_enable_disable(self, obs_state):
        obs.enable(trace=True)
        assert obs.enabled and obs.trace_enabled
        obs.disable()
        assert not obs.enabled and not obs.trace_enabled
