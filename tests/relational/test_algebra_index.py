"""Unit and property tests for the algebra operators and hash indexes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.relational.algebra import (
    Aggregate,
    aggregate_value,
    cartesian_product,
    difference,
    distinct,
    equi_join,
    extend,
    group_by,
    intersection,
    left_anti_join,
    left_semi_join,
    limit,
    natural_join,
    project,
    rename,
    select,
    sort,
    union,
)
from repro.relational.expressions import ColumnRef, Comparison, Literal
from repro.relational.index import HashIndex
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import NULL, AttributeType, is_null


@pytest.fixture
def orders():
    schema = RelationSchema("orders", [
        Attribute("id", AttributeType.INTEGER),
        Attribute("customer", AttributeType.STRING),
        Attribute("amount", AttributeType.FLOAT),
    ])
    return Relation.from_dicts(schema, [
        {"id": 1, "customer": "ann", "amount": 10.0},
        {"id": 2, "customer": "bob", "amount": 20.0},
        {"id": 3, "customer": "ann", "amount": 5.0},
        {"id": 4, "customer": "cid", "amount": NULL},
    ])


@pytest.fixture
def customers():
    schema = RelationSchema("customers", [
        Attribute("customer", AttributeType.STRING),
        Attribute("city", AttributeType.STRING),
    ])
    return Relation.from_dicts(schema, [
        {"customer": "ann", "city": "edi"},
        {"customer": "bob", "city": "nyc"},
    ])


class TestUnaryOperators:
    def test_select_with_expression(self, orders):
        predicate = Comparison("=", ColumnRef("customer"), Literal("ann"))
        result = select(orders, predicate)
        assert len(result) == 2

    def test_select_with_callable(self, orders):
        result = select(orders, lambda t: t["id"] > 2)
        assert sorted(t["id"] for t in result) == [3, 4]

    def test_project_distinct(self, orders):
        result = project(orders, ["customer"])
        assert len(result) == 3

    def test_project_keeps_duplicates_when_asked(self, orders):
        result = project(orders, ["customer"], distinct=False)
        assert len(result) == 4

    def test_rename(self, orders):
        result = rename(orders, {"amount": "total"})
        assert result.schema.has_attribute("total")

    def test_extend(self, orders):
        result = extend(orders, "double", AttributeType.FLOAT,
                        lambda t: NULL if is_null(t["amount"]) else t["amount"] * 2)
        row = next(t for t in result if t["id"] == 1)
        assert row["double"] == 20.0

    def test_distinct(self, orders):
        doubled = union(orders, orders)
        assert len(distinct(doubled)) == len(doubled)

    def test_sort_and_limit(self, orders):
        result = limit(sort(orders, ["amount"], descending=True), 1)
        assert result.tuples()[0]["id"] == 2

    def test_select_null_predicate_drops_row(self, orders):
        predicate = Comparison(">", ColumnRef("amount"), Literal(1.0))
        result = select(orders, predicate)
        assert all(not is_null(t["amount"]) for t in result)


class TestSetOperators:
    def test_union_removes_duplicates(self, orders):
        assert len(union(orders, orders)) == len(orders)

    def test_difference(self, orders):
        top = select(orders, lambda t: t["id"] <= 2)
        rest = difference(orders, top)
        assert sorted(t["id"] for t in rest) == [3, 4]

    def test_intersection(self, orders):
        top = select(orders, lambda t: t["id"] <= 2)
        both = intersection(orders, top)
        assert sorted(t["id"] for t in both) == [1, 2]

    def test_arity_mismatch_raises(self, orders, customers):
        with pytest.raises(SchemaError):
            union(orders, customers)


class TestJoins:
    def test_equi_join(self, orders, customers):
        result = equi_join(orders, customers, ["customer"], ["customer"])
        assert len(result) == 3
        assert result.schema.has_attribute("city")

    def test_equi_join_disambiguates_clashing_names(self, orders, customers):
        result = equi_join(orders, customers, ["customer"], ["customer"])
        assert result.schema.has_attribute("customers_customer")

    def test_natural_join_matches_equi_join(self, orders, customers):
        assert len(natural_join(orders, customers)) == 3

    def test_cartesian_product(self, orders, customers):
        assert len(cartesian_product(orders, customers)) == len(orders) * len(customers)

    def test_null_keys_never_match(self, customers):
        schema = RelationSchema("left", [Attribute("k"), Attribute("v")])
        left = Relation.from_dicts(schema, [{"k": NULL, "v": "x"}])
        result = equi_join(left, customers, ["k"], ["customer"])
        assert len(result) == 0

    def test_anti_join(self, orders, customers):
        missing = left_anti_join(orders, customers, ["customer"], ["customer"])
        assert sorted(t["customer"] for t in missing) == ["cid"]

    def test_semi_join(self, orders, customers):
        present = left_semi_join(orders, customers, ["customer"], ["customer"])
        assert len(present) == 3

    def test_anti_join_preserves_tids(self, orders, customers):
        missing = left_anti_join(orders, customers, ["customer"], ["customer"])
        for t in missing:
            assert orders.tuple(t.tid)["customer"] == t["customer"]


class TestGrouping:
    def test_group_by_count(self, orders):
        result = group_by(orders, ["customer"], [Aggregate("count", None, "n")])
        counts = {t["customer"]: t["n"] for t in result}
        assert counts == {"ann": 2, "bob": 1, "cid": 1}

    def test_sum_ignores_nulls(self, orders):
        result = group_by(orders, [], [Aggregate("sum", "amount", "total")])
        assert result.tuples()[0]["total"] == 35.0

    def test_avg_and_minmax(self, orders):
        value = aggregate_value(orders, Aggregate("avg", "amount"))
        assert value == pytest.approx(35.0 / 3)
        assert aggregate_value(orders, Aggregate("min", "amount")) == 5.0
        assert aggregate_value(orders, Aggregate("max", "amount")) == 20.0

    def test_count_distinct(self, orders):
        assert aggregate_value(orders, Aggregate("count_distinct", "customer")) == 3

    def test_empty_input_global_aggregate(self):
        schema = RelationSchema("empty", [Attribute("x", AttributeType.INTEGER)])
        relation = Relation(schema)
        result = group_by(relation, [], [Aggregate("count", None, "n")])
        assert result.tuples()[0]["n"] == 0

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(Exception):
            Aggregate("median", "x")


class TestHashIndex:
    def test_lookup(self, orders):
        index = HashIndex(orders, ["customer"])
        tids = index.lookup(("ann",))
        assert {orders.tuple(t)["id"] for t in tids} == {1, 3}

    def test_group_count_and_largest(self, orders):
        index = HashIndex(orders, ["customer"])
        assert index.group_count() == 3
        key, size = index.largest_group()
        assert key == ("ann",) and size == 2

    def test_staleness_and_rebuild(self, orders):
        index = HashIndex(orders, ["customer"])
        orders.insert_dict({"id": 5, "customer": "ann", "amount": 1.0})
        assert index.is_stale()
        index.rebuild()
        assert len(index.lookup(("ann",))) == 3

    def test_incremental_maintenance(self, orders):
        index = HashIndex(orders, ["customer"])
        tid = orders.insert_dict({"id": 6, "customer": "dan", "amount": 2.0})
        index.add_tuple(orders.tuple(tid))
        assert index.lookup(("dan",)) == {tid}
        index.remove_tuple(orders.tuple(tid))
        assert index.lookup(("dan",)) == set()


class TestAlgebraProperties:
    rows = st.lists(
        st.tuples(st.integers(0, 5), st.sampled_from(["a", "b", "c"])), max_size=40)

    @given(rows)
    def test_select_then_union_is_original(self, data):
        schema = RelationSchema("r", [
            Attribute("k", AttributeType.INTEGER), Attribute("v", AttributeType.STRING)])
        relation = Relation.from_rows(schema, data)
        low = select(relation, lambda t: t["k"] < 3)
        high = select(relation, lambda t: t["k"] >= 3)
        combined = union(low, high)
        assert {t.values for t in combined} == {t.values for t in relation}

    @given(rows)
    def test_semi_and_anti_join_partition_left(self, data):
        schema = RelationSchema("r", [
            Attribute("k", AttributeType.INTEGER), Attribute("v", AttributeType.STRING)])
        left = Relation.from_rows(schema, data)
        right_schema = RelationSchema("s", [Attribute("k", AttributeType.INTEGER)])
        right = Relation.from_rows(right_schema, [(k,) for k in range(0, 3)])
        semi = left_semi_join(left, right, ["k"], ["k"])
        anti = left_anti_join(left, right, ["k"], ["k"])
        assert len(semi) + len(anti) == len(left)
        assert set(semi.tids()) | set(anti.tids()) == set(left.tids())

    @given(rows)
    def test_group_by_counts_sum_to_total(self, data):
        schema = RelationSchema("r", [
            Attribute("k", AttributeType.INTEGER), Attribute("v", AttributeType.STRING)])
        relation = Relation.from_rows(schema, data)
        grouped = group_by(relation, ["v"], [Aggregate("count", None, "n")])
        assert sum(t["n"] for t in grouped) == len(relation)
