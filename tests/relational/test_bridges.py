"""Unit tests for cross-relation dictionary bridges.

A :class:`~repro.relational.columns.DictionaryBridge` translates one
column's dictionary codes into another's — the substrate under
code-native joins and CIND anti-joins.  These tests cover the
translation semantics (value vs string mode, NULL, missing partners),
the per-column cache, and staleness: a bridge must rebuild whenever
*either* side's dictionary grows or resets, and the mutation-then-join /
mutation-then-CIND regressions assert the end-to-end paths pick the
rebuilt translations up.
"""

import pytest

from repro.constraints.cind import CIND
from repro.constraints.tableau import PatternTuple
from repro.detection.cind_detect import CINDDetector
from repro.relational.columns import (
    NO_PARTNER,
    NULL_CODE,
    Column,
    DictionaryBridge,
)
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.sql.engine import SQLEngine
from repro.relational.types import NULL, AttributeType


def column_from(values, name="x"):
    column = Column(name)
    for value in values:
        code = column.intern(value)
        column.codes.append(code)
        column.counts[code] += 1
    return column


class TestTranslation:
    def test_value_mode_maps_shared_values_and_marks_missing_ones(self):
        left = column_from(["a", "b", "c"])
        right = column_from(["c", "a"])
        bridge = left.bridge_to(right)
        assert bridge.translation[NULL_CODE] == NULL_CODE
        assert bridge.translation[left.code_of("b")] == NO_PARTNER
        for value in ("a", "c"):
            assert bridge.translation[left.code_of(value)] == right.code_of(value)

    def test_value_mode_distinguishes_types_string_mode_does_not(self):
        ints = column_from([1, 2])
        strs = column_from(["1", "2"])
        assert ints.bridge_to(strs).translation[ints.code_of(1)] == NO_PARTNER
        by_string = ints.bridge_to(strs, mode="string")
        assert by_string.translation[ints.code_of(1)] == strs.code_of("1")

    def test_string_self_bridge_canonicalises_to_the_first_code(self):
        column = column_from([1, "1", 2])
        canon = column.bridge_to(column, mode="string").translation
        assert canon[column.code_of("1")] == column.code_of(1)
        assert canon[column.code_of(1)] == column.code_of(1)
        assert canon[column.code_of(2)] == column.code_of(2)

    def test_bridges_are_cached_per_target_and_mode(self):
        left, right = column_from(["a"]), column_from(["a"])
        assert left.bridge_to(right) is left.bridge_to(right)
        assert left.bridge_to(right) is not left.bridge_to(right, mode="string")

    def test_unknown_mode_is_rejected(self):
        column = column_from(["a"])
        with pytest.raises(ValueError):
            DictionaryBridge(column, column, "fuzzy")


class TestStaleness:
    def test_source_dictionary_growth_extends_the_translation(self):
        left = column_from(["a"])
        right = column_from(["a", "b"])
        bridge = left.bridge_to(right)
        assert len(bridge.translation) == 2  # NULL + "a"
        left.intern("b")
        assert bridge.is_stale()
        assert left.bridge_to(right) is bridge and not bridge.is_stale()
        assert bridge.translation[left.code_of("b")] == right.code_of("b")

    def test_target_dictionary_growth_fills_missing_partners(self):
        left = column_from(["a", "b"])
        right = column_from(["a"])
        bridge = left.bridge_to(right)
        assert bridge.translation[left.code_of("b")] == NO_PARTNER
        right.intern("b")
        assert left.bridge_to(right).translation[left.code_of("b")] == right.code_of("b")

    def test_dictionary_reset_invalidates_the_bridge(self):
        schema = RelationSchema("r", [Attribute("x", AttributeType.STRING)])
        relation = Relation.from_rows(schema, [("a",), ("b",)])
        right = relation.columns.column("x")
        left = column_from(["a", "b"])
        bridge = left.bridge_to(right)
        assert bridge.translation[left.code_of("a")] == right.code_of("a")
        relation.delete(0)
        relation.columns.rebuild()  # re-encodes from scratch: "a" is gone
        refreshed = left.bridge_to(right)
        assert refreshed is bridge
        assert bridge.translation[left.code_of("a")] == NO_PARTNER
        assert bridge.translation[left.code_of("b")] == right.code_of("b")


class TestComposition:
    def test_composed_bridge_chains_two_hops(self):
        a = column_from(["x", "y", "z"])
        b = column_from(["y", "z", "x"])
        c = column_from(["z", "x", "w"])
        composed = a.bridge_to(b).compose(b.bridge_to(c))
        assert composed.source is a and composed.target is c
        assert composed.translation[NULL_CODE] == NULL_CODE
        for value in ("x", "z"):
            assert composed.translation[a.code_of(value)] == c.code_of(value)
        # "y" survives the first hop but has no partner in c
        assert composed.translation[a.code_of("y")] == NO_PARTNER

    def test_no_partner_propagates_without_negative_indexing(self):
        # "q" is missing from the *intermediate* dictionary: the first hop
        # yields NO_PARTNER (-1), which must propagate — not index the
        # second hop's translation from the end
        a = column_from(["x", "q"])
        b = column_from(["x"])
        c = column_from(["x", "q"])
        composed = a.bridge_to(b).compose(b.bridge_to(c))
        assert composed.translation[a.code_of("q")] == NO_PARTNER
        assert composed.translation[a.code_of("x")] == c.code_of("x")

    def test_three_hop_chain_composes_left_to_right(self):
        a, b = column_from(["v", "u"]), column_from(["u", "v"])
        c, d = column_from(["v", "u", "t"]), column_from(["u", "t", "v"])
        composed = a.bridge_to(b).compose(b.bridge_to(c)).compose(c.bridge_to(d))
        assert len(composed.hops) == 3
        assert composed.source is a and composed.target is d
        for value in ("v", "u"):
            assert composed.translation[a.code_of(value)] == d.code_of(value)

    def test_mismatched_hops_are_rejected(self):
        a, b, c = column_from(["x"]), column_from(["x"]), column_from(["x"])
        with pytest.raises(ValueError):
            a.bridge_to(b).compose(a.bridge_to(c))  # b is not a's target... chain breaks

    def test_intermediate_growth_marks_the_chain_stale(self):
        a = column_from(["x", "y"])
        b = column_from(["x"])
        c = column_from(["x", "y"])
        composed = a.bridge_to(b).compose(b.bridge_to(c))
        assert composed.translation[a.code_of("y")] == NO_PARTNER
        b.intern("y")  # only the *middle* dictionary grows
        assert composed.is_stale()
        composed.ensure_fresh()
        assert not composed.is_stale()
        assert composed.translation[a.code_of("y")] == c.code_of("y")

    def test_endpoint_growth_marks_the_chain_stale(self):
        a = column_from(["x"])
        b = column_from(["x", "y"])
        c = column_from(["x", "y"])
        composed = a.bridge_to(b).compose(b.bridge_to(c))
        assert not composed.is_stale()
        a.intern("y")
        assert composed.is_stale()
        composed.ensure_fresh()
        assert composed.translation[a.code_of("y")] == c.code_of("y")
        c.intern("z")  # target-side growth also invalidates
        assert composed.is_stale()

    def test_translation_list_identity_survives_rebuilds(self):
        # in-place rebuild: broadcast state holding the list sees updates
        a = column_from(["x", "y"])
        b = column_from(["x", "y"])
        c = column_from(["x"])
        composed = a.bridge_to(b).compose(b.bridge_to(c))
        translation = composed.translation
        c.intern("y")
        composed.ensure_fresh()
        assert composed.translation is translation
        assert translation[a.code_of("y")] == c.code_of("y")


JOIN_SCHEMAS = (
    RelationSchema("orders", [Attribute("zip", AttributeType.STRING),
                              Attribute("amount", AttributeType.INTEGER)]),
    RelationSchema("zips", [Attribute("zip", AttributeType.STRING),
                            Attribute("region", AttributeType.STRING)]),
)


def join_database():
    database = Database()
    database.add(Relation.from_rows(JOIN_SCHEMAS[0],
                                    [("EH8", 10), ("NYC", 20), ("SFO", 30)]))
    database.add(Relation.from_rows(JOIN_SCHEMAS[1],
                                    [("EH8", "uk"), ("NYC", "us")]))
    return database


def rows(result):
    return [tuple(t.values) for t in result]


class TestMutationRegressions:
    def test_mutation_then_join_sees_the_new_codes(self):
        database = join_database()
        code = SQLEngine(database)
        row = SQLEngine(database, use_columns=False)
        sql = ("SELECT o.zip, z.region FROM orders o JOIN zips z "
               "ON o.zip = z.zip ORDER BY zip")
        assert rows(code.query(sql)) == rows(row.query(sql))
        assert code.last_plan == "join"
        # both dictionaries grow: the cached bridge must rebuild
        database.relation("orders").insert(("PEK", 40))
        database.relation("zips").insert(("PEK", "cn"))
        database.relation("zips").insert(("SFO", "us"))
        assert rows(code.query(sql)) == rows(row.query(sql))
        assert ("PEK", "cn") in rows(code.query(sql))

    def test_mutation_then_cind_sees_the_new_codes(self):
        database = join_database()
        cind = CIND("orders", ["zip"], "zips", ["zip"],
                    PatternTuple({}), PatternTuple({}))
        detector = CINDDetector(database, [cind])
        baseline = CINDDetector(database, [cind], use_columns=False)

        def tids(det):
            return [v.tid for v in det.detect().violations]

        assert tids(detector) == tids(baseline) == [2]  # SFO has no zip row
        database.relation("zips").insert(("SFO", "us"))  # repairs tid 2
        database.relation("orders").insert((NULL, 50))   # NULL key: new violation
        assert tids(detector) == tids(baseline) == [3]
