"""Tests for the dictionary-encoded column store and the columnar index."""

import pytest

from repro.discovery.partitions import partition_of
from repro.errors import SchemaError
from repro.relational.columns import NULL_CODE, TOMBSTONE
from repro.relational.index import HashIndex
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.stats import collect_stats
from repro.relational.types import NULL, AttributeType, is_null, sort_key


SCHEMA = RelationSchema("people", [
    Attribute("name"), Attribute("city"), Attribute("age", AttributeType.INTEGER),
])

ROWS = [
    ("ada", "london", 36),
    ("alan", "london", 41),
    ("grace", "nyc", 85),
    ("ada", NULL, 36),
]


@pytest.fixture
def relation():
    return Relation.from_rows(SCHEMA, ROWS)


def snapshot(store):
    """Observable state of a store: per column (codes by tid, live value counts)."""
    state = {}
    for column in store.columns():
        live = {}
        for tid in store.relation.tids():
            live[tid] = column.values[column.codes[tid]]
        counts = {column.values[code]: count
                  for code, count in enumerate(column.counts) if count}
        state[column.attribute] = (live, counts)
    return state


class TestColumnStore:
    def test_codes_decode_to_row_values(self, relation):
        store = relation.columns
        for row in relation:
            for position, column in enumerate(store.columns()):
                assert column.values[column.codes[row.tid]] == row.at(position)

    def test_equal_values_share_one_code(self, relation):
        name = relation.columns.column("name")
        codes = [name.codes[t] for t in relation.tids()]
        assert codes[0] == codes[3] and len(set(codes)) == 3

    def test_null_is_code_zero_in_every_column(self, relation):
        city = relation.columns.column("city")
        assert city.codes[3] == NULL_CODE
        assert is_null(city.values[NULL_CODE])

    def test_code_of_unknown_value_is_none(self, relation):
        assert relation.columns.column("city").code_of("paris") is None
        assert relation.columns.column("city").code_of(NULL) == NULL_CODE

    def test_unknown_attribute_raises_schema_error(self, relation):
        with pytest.raises(SchemaError):
            relation.columns.column("nope")

    def test_incremental_maintenance_matches_rebuild(self, relation):
        store = relation.columns
        relation.insert(("hopper", "nyc", 85))
        relation.update(0, "city", "nyc")
        relation.delete(1)
        assert not store.is_stale()
        maintained = snapshot(store)
        store.rebuild()
        assert snapshot(store) == maintained

    def test_delete_leaves_tombstone_and_decrements_counts(self, relation):
        store = relation.columns
        city = store.column("city")
        code = city.codes[0]
        count_before = city.counts[code]
        relation.delete(0)
        assert city.codes[0] == TOMBSTONE
        assert city.counts[code] == count_before - 1

    def test_clear_leaves_store_stale_then_rebuilds(self, relation):
        store = relation.columns
        relation.clear()
        assert store.is_stale()
        relation.insert(("new", "berlin", 1))
        fresh = relation.columns  # transparently rebuilt
        assert not fresh.is_stale()
        assert snapshot(fresh)["city"][1] == {"berlin": 1}

    def test_store_created_after_mutations_is_fresh(self):
        relation = Relation.from_rows(SCHEMA, ROWS)
        relation.delete(2)
        store = relation.columns
        assert not store.is_stale()
        assert store.column("name").distinct_count() == 2

    def test_filter_and_copy_get_their_own_store(self, relation):
        _ = relation.columns
        clone = relation.copy()
        subset = relation.filter(lambda t: t["city"] == "london")
        assert clone.columns.column("name").distinct_count() == 3
        assert subset.columns.column("name").distinct_count() == 2

    def test_matcher_tracks_new_dictionary_values(self, relation):
        age = relation.columns.column("age")
        matcher = age.matcher("is-41-ish", lambda v: str(v) == "41")
        assert {age.values[c] for c in matcher.codes} == {41}
        relation.insert(("cantor", "halle", 41))  # already interned: unchanged
        relation.update(2, "age", 41)
        assert {age.values[c] for c in matcher.codes} == {41}
        # a genuinely new dictionary value that satisfies the predicate
        other = relation.columns.column("name")
        m2 = other.matcher("is-bob", lambda v: v == "bob")
        assert m2.codes == set()
        relation.insert(("bob", "york", 1))
        assert {other.values[c] for c in m2.codes} == {"bob"}

    def test_statistics_from_counts(self, relation):
        city = relation.columns.column("city")
        assert city.null_count() == 1
        assert city.distinct_count() == 2
        assert city.most_common() == ("london", 2)

    def test_most_common_tie_breaks_on_first_occurrence(self):
        relation = Relation.from_rows(SCHEMA, [("b", "x", 1), ("a", "y", 2)])
        assert relation.columns.column("name").most_common() == ("b", 1)

    def test_strings_cache_follows_dictionary(self, relation):
        age = relation.columns.column("age")
        strings = age.strings
        assert strings[age.codes[0]] == "36"
        relation.insert(("x", "y", 99))
        assert age.strings[age.codes[4]] == "99"


class TestCollectStatsColumnar:
    def test_matches_naive_scan(self, relation):
        relation.update(0, "city", NULL)
        stats = collect_stats(relation)
        values = relation.column("city")
        assert stats.column("city").nulls == sum(1 for v in values if is_null(v))
        assert stats.column("city").distinct == len(
            {v for v in values if not is_null(v)})
        assert stats.column("city").total == len(relation)
        assert stats.column("name").most_common == "ada"
        assert stats.column("name").most_common_count == 2


class TestPartitionColumnar:
    def test_matches_value_level_grouping(self, relation):
        relation.insert(("ada", "london", 36))
        for attributes in (["city"], ["name", "age"], ["name", "city", "age"]):
            partition = partition_of(relation, attributes)
            reference = {}
            for row in relation:
                reference.setdefault(row.project(attributes), set()).add(row.tid)
            expected = {frozenset(g) for g in reference.values() if len(g) > 1}
            assert {frozenset(g) for g in partition.groups} == expected


class TestColumnarIndexViews:
    def test_lookup_copy_and_view_agree(self, relation):
        index = HashIndex(relation, ["city"])
        copied = index.lookup(("london",))
        view = index.lookup_view(("london",))
        assert copied == set(view) == {0, 1}
        copied.add(99)  # mutating the copy must not affect the index
        assert index.lookup(("london",)) == {0, 1}

    def test_lookup_view_is_live(self, relation):
        index = HashIndex(relation, ["city"])
        view = index.lookup_view(("london",))
        index.add_tuple(relation.tuple(relation.insert(("new", "london", 7))))
        assert 4 in view

    def test_unknown_key_is_empty(self, relation):
        index = HashIndex(relation, ["city"])
        assert index.lookup(("atlantis",)) == set()
        assert len(index.lookup_view(("atlantis",))) == 0

    def test_groups_decode_to_values(self, relation):
        index = HashIndex(relation, ["city", "age"])
        groups = dict(index.groups())
        assert groups[("london", 36)] == {0}
        assert any(is_null(key[0]) for key in groups)

    def test_bucket_items_are_code_keys(self, relation):
        index = HashIndex(relation, ["city"])
        for key, tids in index.bucket_items():
            assert all(isinstance(code, int) for code in key)
            assert index.lookup(index.decode_key(key)) == tids

    def test_key_of_roundtrips_through_encode(self, relation):
        index = HashIndex(relation, ["city", "age"])
        row = relation.tuple(2)
        key = index.key_of(row)
        assert index.encode_key(("nyc", 85)) == key
        assert index.decode_key(key) == ("nyc", 85)
        assert index.bucket_view(key) == {2}

    def test_row_mode_matches_columnar(self, relation):
        columnar = HashIndex(relation, ["city"])
        rows = HashIndex(relation, ["city"], use_columns=False)
        assert dict(columnar.groups()) == dict(rows.groups())
        assert columnar.lookup(("nyc",)) == rows.lookup(("nyc",))


class TestColumnOrder:
    """The dictionary-order view: sorted codes, dense ranks, bisect ranges."""

    def test_sorted_codes_follow_value_order(self, relation):
        column = relation.columns.column("age")
        order = column.order()
        values = [column.values[code] for code in order.sorted_codes]
        assert values[0] is NULL or is_null(values[0])  # NULL sorts first
        rest = values[1:]
        assert rest == sorted(rest)

    def test_ranks_are_dense_and_order_isomorphic(self, relation):
        column = relation.columns.column("name")
        order = column.order()
        for a in range(len(column.values)):
            for b in range(len(column.values)):
                key_a, key_b = sort_key(column.values[a]), sort_key(column.values[b])
                if key_a < key_b:
                    assert order.ranks[a] < order.ranks[b]
                elif key_a == key_b:
                    assert order.ranks[a] == order.ranks[b]

    def test_range_queries_match_value_scan(self, relation):
        column = relation.columns.column("age")
        order = column.order()
        import operator as op
        ops = {"<": op.lt, "<=": op.le, ">": op.gt, ">=": op.ge}
        for symbol, fn in ops.items():
            for bound in (36, 41, 85, 0, 100, 40.5):
                expected = {code for code in range(1, len(column.values))
                            if fn(sort_key(column.values[code]), sort_key(bound))}
                assert order.codes_in_range(symbol, bound) == expected, (symbol, bound)

    def test_null_code_never_selected(self, relation):
        column = relation.columns.column("city")
        assert NULL_CODE not in column.order().codes_in_range("<", "zzz")
        assert NULL_CODE not in column.order().codes_in_range(">=", "")

    def test_view_rebuilds_after_intern(self, relation):
        column = relation.columns.column("city")
        stale = column.order()
        relation.insert(["new", "aberdeen", 1])
        fresh = column.order()
        assert fresh is not stale
        code = column.code_of("aberdeen")
        assert code in fresh.codes_in_range("<", "london")

    def test_view_cached_while_dictionary_unchanged(self, relation):
        column = relation.columns.column("city")
        assert column.order() is column.order()

    def test_unknown_operator_rejected(self, relation):
        with pytest.raises(ValueError):
            relation.columns.column("city").order().codes_in_range("!", "x")

    def test_reset_clears_view(self, relation):
        column = relation.columns.column("city")
        before = column.order()
        relation.clear()
        for row in ROWS:
            relation.insert(list(row))
        store = relation.columns  # stale store rebuilds in place
        after = store.column("city").order()
        assert after is not before
