"""Tests for CSV import/export and relation statistics."""

import pytest

from repro.errors import SchemaError
from repro.relational.csvio import read_csv, relation_from_csv, relation_to_csv
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.stats import collect_stats
from repro.relational.types import NULL, AttributeType, is_null

CSV_TEXT = """cc,ac,phn,city,zip
44,131,5551234,edi,EH8
44,131,5555678,edi,EH8
01,908,5559999,mh,07974
01,908,,mh,07974
"""


class TestCSV:
    def test_infers_schema_from_header(self):
        relation = relation_from_csv(CSV_TEXT, "customer")
        assert relation.schema.attribute_names == ("cc", "ac", "phn", "city", "zip")
        assert len(relation) == 4

    def test_missing_field_becomes_null(self):
        relation = relation_from_csv(CSV_TEXT, "customer")
        phones = relation.column("phn")
        assert sum(1 for value in phones if is_null(value)) == 1

    def test_explicit_schema_forces_types(self):
        schema = RelationSchema("customer", [
            Attribute("cc", AttributeType.STRING),
            Attribute("ac", AttributeType.STRING),
            Attribute("phn", AttributeType.STRING),
            Attribute("city", AttributeType.STRING),
            Attribute("zip", AttributeType.STRING),
        ])
        relation = relation_from_csv(CSV_TEXT, "customer", schema=schema)
        assert relation.tuples()[0]["cc"] == "44"

    def test_schema_arity_mismatch_raises(self):
        schema = RelationSchema("customer", [Attribute("only_one")])
        with pytest.raises(SchemaError):
            relation_from_csv(CSV_TEXT, "customer", schema=schema)

    def test_empty_csv_raises(self):
        with pytest.raises(SchemaError):
            relation_from_csv("", "empty")

    def test_roundtrip_through_files(self, tmp_path):
        relation = relation_from_csv(CSV_TEXT, "customer")
        path = tmp_path / "customer.csv"
        relation_to_csv(relation, path)
        back = read_csv(path, "customer")
        assert len(back) == len(relation)
        assert back.schema.attribute_names == relation.schema.attribute_names

    def test_nulls_written_as_empty_fields(self):
        schema = RelationSchema("r", [Attribute("a"), Attribute("b")])
        relation = Relation.from_dicts(schema, [{"a": "x", "b": NULL}])
        text = relation_to_csv(relation)
        assert text.splitlines()[1] == "x,"


class TestStats:
    def test_collect_stats(self):
        relation = relation_from_csv(CSV_TEXT, "customer")
        stats = collect_stats(relation)
        assert stats.tuple_count == 4
        city = stats.column("city")
        assert city.distinct == 2
        assert city.most_common in ("edi", "mh")
        assert city.most_common_count == 2

    def test_null_fraction(self):
        relation = relation_from_csv(CSV_TEXT, "customer")
        stats = collect_stats(relation)
        assert stats.column("phn").null_fraction == pytest.approx(0.25)
        assert stats.column("cc").null_fraction == 0.0

    def test_empty_relation_stats(self):
        schema = RelationSchema("r", [Attribute("a")])
        stats = collect_stats(Relation(schema))
        assert stats.tuple_count == 0
        assert stats.column("a").distinct_fraction == 0.0
