"""Direct unit tests for the expression AST and three-valued logic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SQLExecutionError
from repro.relational.expressions import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    EvaluationContext,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    conjunction,
    disjunction,
    truth,
)
from repro.relational.types import NULL, is_null


def ctx(**bindings):
    return EvaluationContext(bindings)


class TestThreeValuedLogic:
    def test_comparison_with_null_is_unknown(self):
        expr = Comparison("=", Literal(NULL), Literal(1))
        assert is_null(expr.evaluate(ctx()))

    def test_and_truth_table(self):
        t, f, u = Literal(True), Literal(False), Literal(NULL)
        assert And((t, t)).evaluate(ctx()) is True
        assert And((t, f)).evaluate(ctx()) is False
        assert is_null(And((t, u)).evaluate(ctx()))
        assert And((f, u)).evaluate(ctx()) is False  # false short-circuits unknown

    def test_or_truth_table(self):
        t, f, u = Literal(True), Literal(False), Literal(NULL)
        assert Or((f, t)).evaluate(ctx()) is True
        assert Or((f, f)).evaluate(ctx()) is False
        assert is_null(Or((f, u)).evaluate(ctx()))
        assert Or((t, u)).evaluate(ctx()) is True  # true short-circuits unknown

    def test_not_unknown_is_unknown(self):
        assert is_null(Not(Literal(NULL)).evaluate(ctx()))
        assert Not(Literal(False)).evaluate(ctx()) is True

    def test_truth_collapses_unknown_to_false(self):
        assert truth(NULL) is False
        assert truth(True) is True

    @given(st.lists(st.sampled_from([True, False, None]), min_size=1, max_size=6))
    def test_and_or_duality(self, values):
        literals = tuple(Literal(NULL if v is None else v) for v in values)
        left = Not(And(literals)).evaluate(ctx())
        right = Or(tuple(Not(l) for l in literals)).evaluate(ctx())
        assert (is_null(left) and is_null(right)) or left == right


class TestPredicates:
    def test_in_list(self):
        expr = InList(ColumnRef("city"), (Literal("edi"), Literal("ldn")))
        assert expr.evaluate(ctx(city="edi")) is True
        assert expr.evaluate(ctx(city="nyc")) is False
        assert is_null(expr.evaluate(ctx(city=NULL)))

    def test_not_in_with_unknown_member(self):
        expr = InList(ColumnRef("x"), (Literal(1), Literal(NULL)), negated=True)
        assert expr.evaluate(ctx(x=1)) is False
        assert is_null(expr.evaluate(ctx(x=2)))  # might equal the NULL member

    def test_like(self):
        assert Like(ColumnRef("s"), "may%").evaluate(ctx(s="mayfield")) is True
        assert Like(ColumnRef("s"), "m_y").evaluate(ctx(s="may")) is True
        assert Like(ColumnRef("s"), "m_y").evaluate(ctx(s="mayo")) is False
        assert Like(ColumnRef("s"), "a%", negated=True).evaluate(ctx(s="bob")) is True

    def test_is_null(self):
        assert IsNull(ColumnRef("x")).evaluate(ctx(x=NULL)) is True
        assert IsNull(ColumnRef("x"), negated=True).evaluate(ctx(x=1)) is True

    def test_numeric_string_comparison_not_equal(self):
        # 1 (int) and 1.0 (float) compare equal; strings do not coerce
        assert Comparison("=", Literal(1), Literal(1.0)).evaluate(ctx()) is True


class TestArithmeticAndFunctions:
    def test_arithmetic(self):
        assert Arithmetic("+", Literal(2), Literal(3)).evaluate(ctx()) == 5
        assert Arithmetic("*", ColumnRef("x"), Literal(4)).evaluate(ctx(x=2)) == 8
        assert is_null(Arithmetic("/", Literal(1), Literal(0)).evaluate(ctx()))
        assert is_null(Arithmetic("+", Literal(NULL), Literal(1)).evaluate(ctx()))

    def test_functions(self):
        assert FunctionCall("upper", (Literal("mh"),)).evaluate(ctx()) == "MH"
        assert FunctionCall("length", (Literal("abc"),)).evaluate(ctx()) == 3
        assert FunctionCall("coalesce", (Literal(NULL), Literal("x"))).evaluate(ctx()) == "x"
        assert FunctionCall("concat", (Literal("a"), Literal("b"))).evaluate(ctx()) == "ab"

    def test_unknown_function_raises(self):
        with pytest.raises(SQLExecutionError):
            FunctionCall("soundex", (Literal("a"),)).evaluate(ctx())

    def test_bad_arithmetic_operand_raises(self):
        with pytest.raises(SQLExecutionError):
            Arithmetic("+", Literal("a"), Literal(1)).evaluate(ctx())


class TestContextAndHelpers:
    def test_qualified_lookup(self):
        context = EvaluationContext({"t1.zip": "EH8", "t2.zip": "G1"})
        assert ColumnRef("zip", qualifier="t1").evaluate(context) == "EH8"

    def test_ambiguous_unqualified_lookup_raises(self):
        context = EvaluationContext({"t1.zip": "EH8", "t2.zip": "G1"})
        with pytest.raises(SQLExecutionError):
            ColumnRef("zip").evaluate(context)

    def test_unqualified_falls_back_to_unique_qualified(self):
        context = EvaluationContext({"t1.zip": "EH8"})
        assert ColumnRef("zip").evaluate(context) == "EH8"

    def test_unknown_column_raises(self):
        with pytest.raises(SQLExecutionError):
            ColumnRef("ghost").evaluate(ctx(x=1))

    def test_merged_contexts(self):
        merged = ctx(a=1).merged_with(ctx(b=2))
        assert ColumnRef("a").evaluate(merged) == 1
        assert ColumnRef("b").evaluate(merged) == 2

    def test_conjunction_disjunction_helpers(self):
        assert conjunction([]).evaluate(ctx()) is True
        assert disjunction([]).evaluate(ctx()) is False
        single = Comparison("=", Literal(1), Literal(1))
        assert conjunction([single]) is single

    def test_references_collection(self):
        expr = And((Comparison("=", ColumnRef("a"), Literal(1)),
                    Like(ColumnRef("b"), "x%")))
        assert expr.references() == {"a", "b"}

    def test_from_tuple_context(self):
        from repro.relational.relation import Relation
        from repro.relational.schema import RelationSchema

        relation = Relation(RelationSchema("r", ["a", "b"]))
        tid = relation.insert(["1", "2"])
        context = EvaluationContext.from_tuple(relation.tuple(tid), alias="t")
        assert ColumnRef("a", qualifier="t").evaluate(context) == "1"
        assert ColumnRef("b").evaluate(context) == "2"
