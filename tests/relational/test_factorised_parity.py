"""Randomized parity: factorised (semiring) aggregates == enumerated plans.

Grouped statements whose aggregates all fold through a semiring
(COUNT / COUNT DISTINCT / MIN / MAX, and SUM / AVG over exact integer or
boolean values) skip tuple enumeration entirely: the join engines fold
per-table partial aggregates per join-variable binding and combine them
by semiring multiplication (``factorise_plan`` in
``repro.relational.sql.columnar``).  These tests generate random
databases and random *factorisable* grouped queries over two-table hash
joins and chain / star / triangle multiway shapes — NULL join keys,
``NO_PARTNER`` bridge entries, WHERE push-down, HAVING, ORDER BY,
LIMIT — and assert the factorised results are byte-identical to the
enumerated plans (forced via ``columnar.FACTORISE = False``) and to the
row-at-a-time reference, across the serial chunked pool, every chunk
size, and real process pools, with interleaved mutations between
queries.
"""

import random

import pytest

from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.sql import columnar
from repro.relational.sql.engine import SQLEngine
from repro.relational.types import NULL, AttributeType

ORDERS = RelationSchema("orders", [
    Attribute("city", AttributeType.STRING),
    Attribute("zip", AttributeType.STRING),
    Attribute("country", AttributeType.STRING),
    Attribute("amount", AttributeType.INTEGER),
    Attribute("score", AttributeType.FLOAT),
])
ZIPS = RelationSchema("zips", [
    Attribute("zip", AttributeType.STRING),
    Attribute("region", AttributeType.STRING),
    Attribute("pop", AttributeType.INTEGER),
])
REGIONS = RelationSchema("regions", [
    Attribute("region", AttributeType.STRING),
    Attribute("country", AttributeType.STRING),
    Attribute("gdp", AttributeType.FLOAT),
])
CITIES_SCHEMA = RelationSchema("cities", [
    Attribute("city", AttributeType.STRING),
    Attribute("mayor", AttributeType.STRING),
    Attribute("size", AttributeType.INTEGER),
])

CITY_POOL = ["edi", "ldn", "nyc", "mh", "sfo", "cdg"]
# deliberate partial overlaps: every bridge chain contains NO_PARTNER
# entries and every shared code space misses some values on some side
ZIP_POOL = ["EH8", "07974", "10012", "94107", "100080", "WC1"]
REGION_POOL = ["uk", "us", "cn", "fr"]
COUNTRY_POOL = ["UK", "US", "CN", "FR"]
MAYOR_POOL = ["ada", "bob", "cyd"]


def _orders_row(rng, null_rate=0.1):
    return [
        NULL if rng.random() < null_rate else rng.choice(CITY_POOL[:5]),
        NULL if rng.random() < null_rate else rng.choice(ZIP_POOL[:4]),
        NULL if rng.random() < null_rate else rng.choice(COUNTRY_POOL[:3]),
        NULL if rng.random() < null_rate else rng.randrange(100),
        NULL if rng.random() < null_rate else round(rng.random() * 10, 3),
    ]


def _zips_row(rng, null_rate=0.1):
    return [
        NULL if rng.random() < null_rate else rng.choice(ZIP_POOL[2:]),
        NULL if rng.random() < null_rate else rng.choice(REGION_POOL[:3]),
        NULL if rng.random() < null_rate else rng.randrange(1000),
    ]


def _regions_row(rng, null_rate=0.1):
    return [
        NULL if rng.random() < null_rate else rng.choice(REGION_POOL[1:]),
        NULL if rng.random() < null_rate else rng.choice(COUNTRY_POOL[1:]),
        NULL if rng.random() < null_rate else round(rng.random() * 5, 3),
    ]


def _cities_row(rng, null_rate=0.1):
    return [
        NULL if rng.random() < null_rate else rng.choice(CITY_POOL[2:]),
        NULL if rng.random() < null_rate else rng.choice(MAYOR_POOL),
        NULL if rng.random() < null_rate else rng.randrange(500),
    ]


_MAKERS = {"orders": _orders_row, "zips": _zips_row,
           "regions": _regions_row, "cities": _cities_row}
_SCHEMAS = {"orders": ORDERS, "zips": ZIPS,
            "regions": REGIONS, "cities": CITIES_SCHEMA}


def random_database(seed: int, orders=45, zips=25, regions=15, cities=20) -> Database:
    rng = random.Random(seed)
    database = Database()
    for name, size in (("orders", orders), ("zips", zips),
                       ("regions", regions), ("cities", cities)):
        relation = Relation(_SCHEMAS[name])
        for _ in range(size):
            relation.insert(_MAKERS[name](rng))
        database.add(relation)
    return database


def mutate(database: Database, rng: random.Random, steps: int = 8) -> None:
    """Insert / delete / update random tuples on every relation."""
    for _ in range(steps):
        name = rng.choice(list(_MAKERS))
        maker = _MAKERS[name]
        relation = database.relation(name)
        action = rng.random()
        tids = relation.tids()
        if action < 0.5 or not tids:
            relation.insert(maker(rng))
        elif action < 0.75:
            relation.delete(rng.choice(tids))
        else:
            position = rng.randrange(len(relation.schema.attributes))
            attribute = relation.schema.attributes[position].name
            value = maker(rng, null_rate=0.2)[position]
            relation.update(rng.choice(tids), attribute, value)


def random_where(rng, aliases) -> str:
    choices = {
        "o": [lambda: f"o.amount {rng.choice(['<', '<=', '>', '>='])} "
                      f"{rng.randrange(100)}",
              lambda: f"o.city = '{rng.choice(CITY_POOL)}'",
              lambda: "o.city {} ({})".format(
                  rng.choice(["IN", "NOT IN"]),
                  ", ".join(f"'{c}'" for c in rng.sample(CITY_POOL, 2)))],
        "z": [lambda: f"z.pop {rng.choice(['<', '<=', '>', '>='])} "
                      f"{rng.randrange(1000)}",
              lambda: f"z.region != '{rng.choice(REGION_POOL)}'"],
        "r": [lambda: f"r.gdp {rng.choice(['<', '>'])} {rng.random() * 5:.2f}",
              lambda: f"r.country = '{rng.choice(COUNTRY_POOL)}'"],
        "c": [lambda: f"c.size {rng.choice(['<', '>'])} {rng.randrange(500)}",
              lambda: f"c.mayor != '{rng.choice(MAYOR_POOL)}'"],
    }
    pool = [make for alias in aliases for make in choices[alias]]
    return " AND ".join(rng.choice(pool)() for _ in range(rng.randrange(1, 3)))


#: join shape -> (FROM tables, equi conjuncts, participating aliases);
#: "pair" exercises the two-table hash-join plan, the rest the multiway one
SHAPES = {
    "pair": ("orders o, zips z", ["o.zip = z.zip"], "oz"),
    "chain": ("orders o, zips z, regions r",
              ["o.zip = z.zip", "z.region = r.region"], "ozr"),
    "star": ("orders o, zips z, cities c",
             ["o.zip = z.zip", "o.city = c.city"], "ozc"),
    "triangle": ("orders o, zips z, regions r",
                 ["o.zip = z.zip", "z.region = r.region",
                  "r.country = o.country"], "ozr"),
}

#: group-key columns per alias, all with distinct output names
GROUP_KEYS = {
    "o": ["o.city", "o.zip", "o.amount"],
    "z": ["z.region", "z.pop"],
    "r": ["r.country"],
    "c": ["c.mayor", "c.size"],
}

#: every aggregate here folds exactly through the semiring: COUNT /
#: COUNT DISTINCT / MIN / MAX over anything, SUM / AVG over integers
#: only (float folds stay on the enumerated plans)
FOLDABLE_AGGREGATES = [
    "COUNT(*) AS n", "COUNT(o.amount) AS cnt", "COUNT(z.pop) AS zcnt",
    "COUNT(DISTINCT o.city) AS d", "MIN(o.amount) AS lo",
    "MAX(o.amount) AS olhi", "MAX(z.pop) AS hi", "MIN(o.city) AS first_city",
    "SUM(z.pop) AS s", "SUM(o.amount) AS os", "SUM(DISTINCT o.amount) AS ds",
    "AVG(o.amount) AS oa", "AVG(z.pop) AS za",
]


def random_factorised_query(rng, shape=None) -> str:
    """A grouped query whose aggregates all fold through the semiring."""
    tables, conjuncts, aliases = SHAPES[shape or rng.choice(list(SHAPES))]
    where = list(conjuncts)
    if rng.random() < 0.7:
        where.append(random_where(rng, aliases))
    keys = rng.sample([key for alias in aliases for key in GROUP_KEYS[alias]],
                      rng.randrange(1, 3))
    names = [ref.split(".")[1] for ref in keys]
    aggregates = rng.sample(FOLDABLE_AGGREGATES, rng.randrange(1, 5))
    having = " HAVING COUNT(*) > 1" if rng.random() < 0.3 else ""
    order = f" ORDER BY {names[0]}" if rng.random() < 0.5 else ""
    limit = f" LIMIT {rng.randrange(1, 8)}" if rng.random() < 0.3 else ""
    return (f"SELECT {', '.join(keys + aggregates)} FROM {tables} "
            f"WHERE {' AND '.join(where)} "
            f"GROUP BY {', '.join(names)}{having}{order}{limit}")


def fingerprint(result: Relation):
    return ([a.name for a in result.schema.attributes],
            [a.type for a in result.schema.attributes],
            [t.values for t in result])


def enumerated_fingerprint(engine: SQLEngine, sql: str):
    """Run *sql* with factorisation disabled (the enumerated reference)."""
    saved = columnar.FACTORISE
    columnar.FACTORISE = False
    try:
        return fingerprint(engine.query(sql))
    finally:
        columnar.FACTORISE = saved


class TestRandomizedFactorisedParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_factorised_matches_enumerated_and_row(self, seed):
        rng = random.Random(9000 + seed)
        database = random_database(seed)
        row = SQLEngine(database, use_columns=False)
        code = SQLEngine(database)
        serial = SQLEngine(database, engine="serial")
        factorised = 0
        for _ in range(16):
            sql = random_factorised_query(rng)
            expected = fingerprint(row.query(sql))
            assert enumerated_fingerprint(code, sql) == expected, sql
            assert code.last_plan in ("join", "multiway"), sql
            assert fingerprint(code.query(sql)) == expected, sql
            assert fingerprint(serial.query(sql)) == expected, sql
            factorised += code.last_plan == "factorised"
            mutate(database, rng)
        # every generated query is grouped with foldable aggregates: the
        # only escape hatch is a compile failure to the row path
        assert factorised > 12

    @pytest.mark.parametrize("shape", sorted(SHAPES))
    def test_every_shape_factorises(self, shape):
        rng = random.Random(hash(shape) % 10_000)
        database = random_database(7)
        row = SQLEngine(database, use_columns=False)
        code = SQLEngine(database)
        for _ in range(6):
            sql = random_factorised_query(rng, shape)
            expected = fingerprint(row.query(sql))
            assert fingerprint(code.query(sql)) == expected, sql
            assert code.last_plan == "factorised", sql
            mutate(database, rng)

    def test_null_and_no_partner_keys_fold_identically(self):
        # every orders.zip is NULL or missing from zips: the factorised
        # fold must agree with the enumerated plan on the empty join and
        # on the half-empty one after a repair
        database = Database()
        database.add(Relation.from_rows(ORDERS, [
            ("edi", NULL, "UK", 5, 1.0), ("nyc", "XXXX", "US", 7, 2.0),
            ("sfo", "YYYY", "US", NULL, 3.0)]))
        database.add(Relation.from_rows(ZIPS, [
            ("10012", "us", 100), ("94107", "us", NULL)]))
        row = SQLEngine(database, use_columns=False)
        code = SQLEngine(database)
        sql = ("SELECT z.region, COUNT(*) AS n, SUM(o.amount) AS s, "
               "MIN(o.city) AS lo FROM orders o JOIN zips z "
               "ON o.zip = z.zip GROUP BY region")
        expected = fingerprint(row.query(sql))
        assert fingerprint(code.query(sql)) == expected
        assert code.last_plan == "factorised"
        assert enumerated_fingerprint(code, sql) == expected
        database.relation("orders").update(1, "zip", "10012")
        database.relation("orders").update(2, "zip", "94107")
        expected = fingerprint(row.query(sql))
        assert fingerprint(code.query(sql)) == expected
        assert enumerated_fingerprint(code, sql) == expected

    def test_zero_exec_rows_on_the_factorised_path(self):
        from repro.relational.sql import executor as executor_module

        database = random_database(11)
        code = SQLEngine(database)
        row = SQLEngine(database, use_columns=False)
        sql = ("SELECT o.city, COUNT(*) AS n, SUM(z.pop) AS s, "
               "AVG(o.amount) AS a, COUNT(DISTINCT z.region) AS d "
               "FROM orders o, zips z, regions r "
               "WHERE o.zip = z.zip AND z.region = r.region "
               "AND o.amount BETWEEN 5 AND 90 AND z.region IN ('uk', 'us') "
               "GROUP BY o.city HAVING COUNT(*) > 0 ORDER BY city")
        built = []
        executor_module._exec_row_hook = built.append
        try:
            result = code.query(sql)
        finally:
            executor_module._exec_row_hook = None
        assert code.last_plan == "factorised"
        assert not built  # zero _ExecRow allocations end to end
        assert fingerprint(result) == fingerprint(row.query(sql))

    def test_parallel_factorised_across_real_processes(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "0")
        rng = random.Random(777)
        database = random_database(777, orders=40, zips=20, regions=12, cities=15)
        row = SQLEngine(database, use_columns=False)
        parallel = SQLEngine(database, engine="parallel", workers=2)
        for _ in range(8):
            sql = random_factorised_query(rng)
            expected = fingerprint(row.query(sql))
            assert fingerprint(parallel.query(sql)) == expected, sql
            mutate(database, rng)

    @pytest.mark.parametrize("chunks", [1, 2, 7, 1000])
    def test_factorised_chunk_boundaries_are_invisible(self, chunks):
        from repro.engine.executor import SerialPool
        from repro.relational.sql.executor import SQLExecutor
        from repro.relational.sql.parser import parse_sql

        database = random_database(66)
        row = SQLEngine(database, use_columns=False)
        executor = SQLExecutor(database, pool=SerialPool(num_chunks=chunks))
        rng = random.Random(66)
        for _ in range(10):
            sql = random_factorised_query(rng)
            expected = fingerprint(row.query(sql))
            assert fingerprint(executor.execute(parse_sql(sql))) == expected, sql


class TestFactorisedPlanGate:
    def test_float_aggregates_stay_enumerated_with_reason(self):
        database = random_database(3)
        code = SQLEngine(database)
        sql = ("SELECT o.city, AVG(o.score) AS a FROM orders o "
               "JOIN zips z ON o.zip = z.zip GROUP BY city")
        code.query(sql, explain=True)
        assert code.last_plan == "join"
        reasons = code.last_explain["why_not_factorised"]
        assert any("fold order" in reason for reason in reasons)

    def test_ungrouped_statements_stay_enumerated_with_reason(self):
        database = random_database(3)
        code = SQLEngine(database)
        sql = ("SELECT o.city, z.region FROM orders o "
               "JOIN zips z ON o.zip = z.zip")
        code.query(sql, explain=True)
        assert code.last_plan == "join"
        reasons = code.last_explain["why_not_factorised"]
        assert any("no aggregates" in reason for reason in reasons)

    def test_explain_reports_folds_vs_enumerated_tuples(self):
        database = random_database(5)
        code = SQLEngine(database)
        sql = ("SELECT o.city, COUNT(*) AS n, SUM(z.pop) AS s "
               "FROM orders o, zips z, regions r "
               "WHERE o.zip = z.zip AND z.region = r.region GROUP BY city")
        report = code.explain(sql)
        assert code.last_plan == "factorised"
        assert "plan: factorised" in report
        assert "factorised aggregates:" in report
        assert "semiring fold(s)" in report
        block = code.last_explain["factorised"]
        assert block["kind"] == "multiway"
        assert block["partials"] >= block["groups"] >= 1
        assert block["tuples"] >= block["groups"]
