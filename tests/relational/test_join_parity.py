"""Randomized parity: code-native joins are identical to the row path.

Two-table INNER JOIN statements compile to integer hash joins over
dictionary-bridge translations (``repro.relational.sql.columnar``), and
CIND detection anti-joins bridged codes.  These tests generate random
relation pairs and random join queries — single- and multi-key equi
joins, WHERE push-down on either side, grouped aggregates drawing from
both sides, HAVING, ORDER BY, DISTINCT, LIMIT, plus residual predicates
that force the row fallback — and assert results are *identical* across
the row path, the in-process code path, the chunked serial pool and real
process pools, for every chunk size, with interleaved mutations on both
relations between queries.
"""

import random

import pytest

from repro.constraints.cind import CIND
from repro.constraints.tableau import PatternTuple
from repro.detection.cind_detect import CINDDetector
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.sql.engine import SQLEngine
from repro.relational.types import NULL, AttributeType

ORDERS = RelationSchema("orders", [
    Attribute("city", AttributeType.STRING),
    Attribute("zip", AttributeType.STRING),
    Attribute("amount", AttributeType.INTEGER),
    Attribute("score", AttributeType.FLOAT),
])
ZIPS = RelationSchema("zips", [
    Attribute("zip", AttributeType.STRING),
    Attribute("region", AttributeType.STRING),
    Attribute("pop", AttributeType.INTEGER),
])

CITIES = ["edi", "ldn", "nyc", "mh", "sfo"]
# deliberate partial overlap: some zips live on only one side, so bridge
# translations always contain NO_PARTNER entries
ZIP_POOL = ["EH8", "07974", "10012", "94107", "100080", "WC1"]
LEFT_ZIPS = ZIP_POOL[:4]
RIGHT_ZIPS = ZIP_POOL[2:]
REGIONS = ["uk", "us", "cn"]


def random_database(seed: int, left_size: int = 60, right_size: int = 40) -> Database:
    rng = random.Random(seed)
    database = Database()
    left = Relation(ORDERS)
    for _ in range(left_size):
        left.insert(_orders_row(rng))
    right = Relation(ZIPS)
    for _ in range(right_size):
        right.insert(_zips_row(rng))
    database.add(left)
    database.add(right)
    return database


def _orders_row(rng, null_rate=0.12):
    return [
        NULL if rng.random() < null_rate else rng.choice(CITIES),
        NULL if rng.random() < null_rate else rng.choice(LEFT_ZIPS),
        NULL if rng.random() < null_rate else rng.randrange(100),
        NULL if rng.random() < null_rate else round(rng.random() * 10, 3),
    ]


def _zips_row(rng, null_rate=0.1):
    return [
        NULL if rng.random() < null_rate else rng.choice(RIGHT_ZIPS),
        NULL if rng.random() < null_rate else rng.choice(REGIONS),
        NULL if rng.random() < null_rate else rng.randrange(1000),
    ]


def mutate(database: Database, rng: random.Random, steps: int = 8) -> None:
    for _ in range(steps):
        name, maker = rng.choice([("orders", _orders_row), ("zips", _zips_row)])
        relation = database.relation(name)
        action = rng.random()
        tids = relation.tids()
        if action < 0.5 or not tids:
            relation.insert(maker(rng))
        elif action < 0.75:
            relation.delete(rng.choice(tids))
        else:
            position = rng.randrange(len(relation.schema.attributes))
            attribute = relation.schema.attributes[position].name
            value = maker(rng, null_rate=0.2)[position]
            relation.update(rng.choice(tids), attribute, value)


def random_where(rng) -> str:
    predicates = []
    for _ in range(rng.randrange(1, 3)):
        kind = rng.randrange(6)
        if kind == 0:
            predicates.append(f"o.amount {rng.choice(['<', '<=', '>', '>='])} "
                              f"{rng.randrange(100)}")
        elif kind == 1:
            predicates.append(f"o.city = '{rng.choice(CITIES)}'")
        elif kind == 2:
            members = ", ".join(f"'{c}'" for c in rng.sample(CITIES, 2))
            predicates.append(f"o.city {rng.choice(['IN', 'NOT IN'])} ({members})")
        elif kind == 3:
            predicates.append(f"z.pop {rng.choice(['<', '<=', '>', '>='])} "
                              f"{rng.randrange(1000)}")
        else:
            predicates.append(f"z.region != '{rng.choice(REGIONS)}'")
    return " AND ".join(predicates)


def random_join_query(rng) -> str:
    on = "o.zip = z.zip"
    if rng.random() < 0.15:  # multi-key equi join (rarely matches, still parity)
        on += " AND o.city = z.region"
    where = f" WHERE {random_where(rng)}" if rng.random() < 0.7 else ""
    if rng.random() < 0.5:  # grouped
        group = rng.choice(["o.city", "z.region", "o.city, z.region"])
        names = [ref.split(".")[1] for ref in group.split(", ")]
        aggregates = rng.sample([
            "COUNT(*) AS n", "COUNT(o.amount) AS c", "COUNT(DISTINCT o.city) AS d",
            "MIN(o.amount) AS lo", "MAX(z.pop) AS hi", "SUM(z.pop) AS s",
            "AVG(o.score) AS a", "SUM(DISTINCT o.amount) AS sd",
        ], rng.randrange(1, 4))
        select = ", ".join([group] + aggregates)
        having = " HAVING COUNT(*) > 1" if rng.random() < 0.3 else ""
        order = f" ORDER BY {names[0]}" if rng.random() < 0.5 else ""
        limit = f" LIMIT {rng.randrange(1, 8)}" if rng.random() < 0.3 else ""
        return (f"SELECT {select} FROM orders o JOIN zips z ON {on}"
                f"{where} GROUP BY {group}{having}{order}{limit}")
    distinct = "DISTINCT " if rng.random() < 0.3 else ""
    # output names stay unique: zip only ever comes from the left side
    columns = rng.sample(["o.city", "o.zip", "o.amount", "o.score",
                          "z.region", "z.pop"], rng.randrange(1, 5))
    order = ""
    if rng.random() < 0.6:
        keys = rng.sample(columns, rng.randrange(1, len(columns) + 1))
        order = " ORDER BY " + ", ".join(
            f"{key.split('.')[1]}{rng.choice(['', ' DESC'])}" for key in keys)
    limit = f" LIMIT {rng.randrange(1, 12)}" if rng.random() < 0.4 else ""
    return (f"SELECT {distinct}{', '.join(columns)} FROM orders o "
            f"JOIN zips z ON {on}{where}{order}{limit}")


def fingerprint(result: Relation):
    return ([a.name for a in result.schema.attributes],
            [a.type for a in result.schema.attributes],
            [t.values for t in result])


def assert_engines_agree(reference: SQLEngine, others: list[SQLEngine], sql: str) -> None:
    expected = fingerprint(reference.query(sql))
    assert reference.last_plan == "row"
    for engine in others:
        assert fingerprint(engine.query(sql)) == expected, sql


class TestRandomizedJoinParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_code_join_matches_row_path(self, seed):
        rng = random.Random(2000 + seed)
        database = random_database(seed)
        row = SQLEngine(database, use_columns=False)
        code = SQLEngine(database)
        serial = SQLEngine(database, engine="serial")
        joined = 0
        for _ in range(20):
            assert_engines_agree(row, [code, serial], random_join_query(rng))
            # grouped statements with exact-foldable aggregates factorise;
            # everything else enumerates on the hash-join plan
            joined += code.last_plan in ("join", "factorised")
            mutate(database, rng)
        assert joined > 10  # most random queries must hit the join plans

    def test_residual_join_predicates_fall_back_with_parity(self):
        database = random_database(3)
        row = SQLEngine(database, use_columns=False)
        code = SQLEngine(database)
        sql = ("SELECT o.city, z.region FROM orders o JOIN zips z "
               "ON o.zip = z.zip WHERE LENGTH(o.city) >= 3 ORDER BY city, region")
        assert fingerprint(code.query(sql)) == fingerprint(row.query(sql))
        assert code.last_plan == "row"

    def test_zero_exec_rows_on_the_join_path(self):
        from repro.relational.sql import executor as executor_module

        database = random_database(11)
        code = SQLEngine(database)
        row = SQLEngine(database, use_columns=False)
        sql = ("SELECT o.city, COUNT(*) AS n, SUM(z.pop) AS s, AVG(o.score) AS a "
               "FROM orders o JOIN zips z ON o.zip = z.zip "
               "WHERE o.amount BETWEEN 5 AND 90 AND z.region IN ('uk', 'us') "
               "GROUP BY o.city HAVING COUNT(*) > 1 ORDER BY city")
        built = []
        executor_module._exec_row_hook = built.append
        try:
            result = code.query(sql)
        finally:
            executor_module._exec_row_hook = None
        assert code.last_plan == "join"
        assert not built  # zero _ExecRow allocations end to end
        assert fingerprint(result) == fingerprint(row.query(sql))

    def test_parallel_join_across_real_processes(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "0")
        rng = random.Random(777)
        database = random_database(777, left_size=50, right_size=30)
        row = SQLEngine(database, use_columns=False)
        parallel = SQLEngine(database, engine="parallel", workers=2)
        for _ in range(10):
            assert_engines_agree(row, [parallel], random_join_query(rng))
            mutate(database, rng)

    @pytest.mark.parametrize("chunks", [1, 2, 3, 7, 1000])
    def test_join_chunk_boundaries_are_invisible(self, chunks):
        from repro.engine.executor import SerialPool
        from repro.relational.sql.executor import SQLExecutor
        from repro.relational.sql.parser import parse_sql

        database = random_database(55, left_size=40, right_size=25)
        row = SQLEngine(database, use_columns=False)
        executor = SQLExecutor(database, pool=SerialPool(num_chunks=chunks))
        rng = random.Random(55)
        for _ in range(10):
            sql = random_join_query(rng)
            expected = fingerprint(row.query(sql))
            assert fingerprint(executor.execute(parse_sql(sql))) == expected, sql


def random_cinds(rng) -> list[CIND]:
    cinds = []
    for _ in range(rng.randrange(1, 4)):
        lhs_pattern = {} if rng.random() < 0.5 else {"city": rng.choice(CITIES)}
        rhs_pattern = {} if rng.random() < 0.5 else {"region": rng.choice(REGIONS)}
        cinds.append(CIND("orders", ["zip"], "zips", ["zip"],
                          PatternTuple(lhs_pattern), PatternTuple(rhs_pattern)))
    return cinds


class TestCINDParityAcrossEngines:
    @pytest.mark.parametrize("seed", range(4))
    def test_bridged_anti_join_matches_all_engines(self, seed, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "0")
        rng = random.Random(6000 + seed)
        database = random_database(seed, left_size=50, right_size=30)
        cinds = random_cinds(rng)
        detectors = [
            CINDDetector(database, cinds, use_columns=False),
            CINDDetector(database, cinds),
            CINDDetector(database, cinds, engine="serial"),
            CINDDetector(database, cinds, engine="parallel", workers=2),
        ]
        for _ in range(4):
            reports = [[(v.cind.lhs_relation, v.tid)
                        for v in detector.detect().violations]
                       for detector in detectors]
            assert all(report == reports[0] for report in reports[1:])
            mutate(database, rng)

    @pytest.mark.parametrize("chunk_size", [1, 2, 7, 10_000])
    def test_cind_chunk_boundaries_are_invisible(self, chunk_size):
        from repro.engine.detect import ChunkedCINDEngine
        from repro.engine.executor import SerialPool

        database = random_database(99, left_size=45, right_size=25)
        rng = random.Random(99)
        cinds = random_cinds(rng)
        baseline = CINDDetector(database, cinds, use_columns=False)
        engine = ChunkedCINDEngine(database, cinds,
                                   SerialPool(chunk_size=chunk_size))
        for _ in range(3):
            expected = [[v.tid for v in baseline.detect_one(cind)] for cind in cinds]
            actual = [[v.tid for v in vs] for vs in engine.detect()]
            assert actual == expected
            mutate(database, rng)
