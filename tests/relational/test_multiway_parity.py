"""Randomized parity: multiway (3+ table) joins are identical to the row path.

3+-table all-equi SELECT statements compile to leapfrog-style
sorted-intersection joins over per-column rank arrays
(``compile_multi_join_plan`` in ``repro.relational.sql.columnar``): the
equi-join graph resolves into join variables, participating columns are
translated into a shared code space via chained dictionary bridges, and
variables are bound one at a time by galloping intersection.  These
tests generate random 3- and 4-table databases and random join queries —
chain, star and triangle shapes, WHERE push-down on every table, grouped
aggregates drawing from all sides, HAVING, ORDER BY, DISTINCT, LIMIT —
and assert results are *identical* across the row path, the in-process
code path, the chunked serial pool and real process pools, for every
chunk size, with interleaved mutations on every relation between
queries.
"""

import random

import pytest

from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.sql.engine import SQLEngine
from repro.relational.types import NULL, AttributeType

ORDERS = RelationSchema("orders", [
    Attribute("city", AttributeType.STRING),
    Attribute("zip", AttributeType.STRING),
    Attribute("country", AttributeType.STRING),
    Attribute("amount", AttributeType.INTEGER),
    Attribute("score", AttributeType.FLOAT),
])
ZIPS = RelationSchema("zips", [
    Attribute("zip", AttributeType.STRING),
    Attribute("region", AttributeType.STRING),
    Attribute("pop", AttributeType.INTEGER),
])
REGIONS = RelationSchema("regions", [
    Attribute("region", AttributeType.STRING),
    Attribute("country", AttributeType.STRING),
    Attribute("gdp", AttributeType.FLOAT),
])
CITIES_SCHEMA = RelationSchema("cities", [
    Attribute("city", AttributeType.STRING),
    Attribute("mayor", AttributeType.STRING),
    Attribute("size", AttributeType.INTEGER),
])

CITY_POOL = ["edi", "ldn", "nyc", "mh", "sfo", "cdg"]
# deliberate partial overlaps: every bridge chain contains NO_PARTNER
# entries and every shared code space misses some values on some side
ZIP_POOL = ["EH8", "07974", "10012", "94107", "100080", "WC1"]
REGION_POOL = ["uk", "us", "cn", "fr"]
COUNTRY_POOL = ["UK", "US", "CN", "FR"]
MAYOR_POOL = ["ada", "bob", "cyd"]


def _orders_row(rng, null_rate=0.1):
    return [
        NULL if rng.random() < null_rate else rng.choice(CITY_POOL[:5]),
        NULL if rng.random() < null_rate else rng.choice(ZIP_POOL[:4]),
        NULL if rng.random() < null_rate else rng.choice(COUNTRY_POOL[:3]),
        NULL if rng.random() < null_rate else rng.randrange(100),
        NULL if rng.random() < null_rate else round(rng.random() * 10, 3),
    ]


def _zips_row(rng, null_rate=0.1):
    return [
        NULL if rng.random() < null_rate else rng.choice(ZIP_POOL[2:]),
        NULL if rng.random() < null_rate else rng.choice(REGION_POOL[:3]),
        NULL if rng.random() < null_rate else rng.randrange(1000),
    ]


def _regions_row(rng, null_rate=0.1):
    return [
        NULL if rng.random() < null_rate else rng.choice(REGION_POOL[1:]),
        NULL if rng.random() < null_rate else rng.choice(COUNTRY_POOL[1:]),
        NULL if rng.random() < null_rate else round(rng.random() * 5, 3),
    ]


def _cities_row(rng, null_rate=0.1):
    return [
        NULL if rng.random() < null_rate else rng.choice(CITY_POOL[2:]),
        NULL if rng.random() < null_rate else rng.choice(MAYOR_POOL),
        NULL if rng.random() < null_rate else rng.randrange(500),
    ]


_MAKERS = {"orders": _orders_row, "zips": _zips_row,
           "regions": _regions_row, "cities": _cities_row}
_SCHEMAS = {"orders": ORDERS, "zips": ZIPS,
            "regions": REGIONS, "cities": CITIES_SCHEMA}


def random_database(seed: int, orders=45, zips=25, regions=15, cities=20) -> Database:
    rng = random.Random(seed)
    database = Database()
    for name, size in (("orders", orders), ("zips", zips),
                       ("regions", regions), ("cities", cities)):
        relation = Relation(_SCHEMAS[name])
        for _ in range(size):
            relation.insert(_MAKERS[name](rng))
        database.add(relation)
    return database


def mutate(database: Database, rng: random.Random, steps: int = 8) -> None:
    """Insert / delete / update random tuples on every relation."""
    for _ in range(steps):
        name = rng.choice(list(_MAKERS))
        maker = _MAKERS[name]
        relation = database.relation(name)
        action = rng.random()
        tids = relation.tids()
        if action < 0.5 or not tids:
            relation.insert(maker(rng))
        elif action < 0.75:
            relation.delete(rng.choice(tids))
        else:
            position = rng.randrange(len(relation.schema.attributes))
            attribute = relation.schema.attributes[position].name
            value = maker(rng, null_rate=0.2)[position]
            relation.update(rng.choice(tids), attribute, value)


def random_where(rng, aliases) -> str:
    choices = {
        "o": [lambda: f"o.amount {rng.choice(['<', '<=', '>', '>='])} "
                      f"{rng.randrange(100)}",
              lambda: f"o.city = '{rng.choice(CITY_POOL)}'",
              lambda: "o.city {} ({})".format(
                  rng.choice(["IN", "NOT IN"]),
                  ", ".join(f"'{c}'" for c in rng.sample(CITY_POOL, 2)))],
        "z": [lambda: f"z.pop {rng.choice(['<', '<=', '>', '>='])} "
                      f"{rng.randrange(1000)}",
              lambda: f"z.region != '{rng.choice(REGION_POOL)}'"],
        "r": [lambda: f"r.gdp {rng.choice(['<', '>'])} {rng.random() * 5:.2f}",
              lambda: f"r.country = '{rng.choice(COUNTRY_POOL)}'"],
        "c": [lambda: f"c.size {rng.choice(['<', '>'])} {rng.randrange(500)}",
              lambda: f"c.mayor != '{rng.choice(MAYOR_POOL)}'"],
    }
    pool = [make for alias in aliases for make in choices[alias]]
    return " AND ".join(rng.choice(pool)() for _ in range(rng.randrange(1, 3)))


#: join shape -> (FROM tables, equi conjuncts, participating aliases)
SHAPES = {
    "chain": ("orders o, zips z, regions r",
              ["o.zip = z.zip", "z.region = r.region"], "ozr"),
    "star": ("orders o, zips z, cities c",
             ["o.zip = z.zip", "o.city = c.city"], "ozc"),
    "triangle": ("orders o, zips z, regions r",
                 ["o.zip = z.zip", "z.region = r.region",
                  "r.country = o.country"], "ozr"),
    "four": ("orders o, zips z, regions r, cities c",
             ["o.zip = z.zip", "z.region = r.region", "o.city = c.city"],
             "ozrc"),
}

#: projectable columns per alias, all with distinct output names
PROJECTIONS = {
    "o": ["o.city", "o.zip", "o.amount", "o.score"],
    "z": ["z.region", "z.pop"],
    "r": ["r.country", "r.gdp"],
    "c": ["c.mayor", "c.size"],
}

AGGREGATES = [
    "COUNT(*) AS n", "COUNT(o.amount) AS cnt", "MIN(o.amount) AS lo",
    "MAX(z.pop) AS hi", "SUM(z.pop) AS s", "AVG(o.score) AS a",
    "COUNT(DISTINCT o.city) AS d",
]


def random_multiway_query(rng, shape=None) -> str:
    tables, conjuncts, aliases = SHAPES[shape or rng.choice(list(SHAPES))]
    where = list(conjuncts)
    if rng.random() < 0.7:
        where.append(random_where(rng, aliases))
    where_clause = " WHERE " + " AND ".join(where)
    if rng.random() < 0.5:  # grouped
        group = rng.choice([PROJECTIONS[a][0] for a in aliases] +
                           [f"{PROJECTIONS[aliases[0]][0]}, "
                            f"{PROJECTIONS[aliases[1]][0]}"])
        names = [ref.split(".")[1] for ref in group.split(", ")]
        aggregates = rng.sample(AGGREGATES, rng.randrange(1, 4))
        select = ", ".join([group] + aggregates)
        having = " HAVING COUNT(*) > 1" if rng.random() < 0.3 else ""
        order = f" ORDER BY {names[0]}" if rng.random() < 0.5 else ""
        limit = f" LIMIT {rng.randrange(1, 8)}" if rng.random() < 0.3 else ""
        return (f"SELECT {select} FROM {tables}{where_clause} "
                f"GROUP BY {group}{having}{order}{limit}")
    distinct = "DISTINCT " if rng.random() < 0.3 else ""
    pool = [column for alias in aliases for column in PROJECTIONS[alias]]
    columns = rng.sample(pool, rng.randrange(1, 5))
    order = ""
    if rng.random() < 0.6:
        keys = rng.sample(columns, rng.randrange(1, len(columns) + 1))
        order = " ORDER BY " + ", ".join(
            f"{key.split('.')[1]}{rng.choice(['', ' DESC'])}" for key in keys)
    limit = f" LIMIT {rng.randrange(1, 12)}" if rng.random() < 0.4 else ""
    return (f"SELECT {distinct}{', '.join(columns)} FROM {tables}"
            f"{where_clause}{order}{limit}")


def fingerprint(result: Relation):
    return ([a.name for a in result.schema.attributes],
            [a.type for a in result.schema.attributes],
            [t.values for t in result])


def assert_engines_agree(reference: SQLEngine, others: list[SQLEngine], sql: str) -> None:
    expected = fingerprint(reference.query(sql))
    assert reference.last_plan == "row"
    for engine in others:
        assert fingerprint(engine.query(sql)) == expected, sql


class TestRandomizedMultiwayParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_multiway_matches_row_path(self, seed):
        rng = random.Random(4000 + seed)
        database = random_database(seed)
        row = SQLEngine(database, use_columns=False)
        code = SQLEngine(database)
        serial = SQLEngine(database, engine="serial")
        multiway = 0
        for _ in range(16):
            assert_engines_agree(row, [code, serial], random_multiway_query(rng))
            multiway += code.last_plan == "multiway"
            mutate(database, rng)
        assert multiway > 12  # most random queries must hit the multiway plan

    @pytest.mark.parametrize("shape", sorted(SHAPES))
    def test_every_shape_compiles_to_multiway(self, shape):
        rng = random.Random(hash(shape) % 10_000)
        database = random_database(7)
        row = SQLEngine(database, use_columns=False)
        code = SQLEngine(database)
        for _ in range(6):
            sql = random_multiway_query(rng, shape)
            assert_engines_agree(row, [code], sql)
            assert code.last_plan == "multiway", sql
            mutate(database, rng)

    def test_zero_exec_rows_on_the_multiway_path(self):
        from repro.relational.sql import executor as executor_module

        database = random_database(11)
        code = SQLEngine(database)
        row = SQLEngine(database, use_columns=False)
        sql = ("SELECT o.city, COUNT(*) AS n, SUM(z.pop) AS s, AVG(o.score) AS a "
               "FROM orders o, zips z, regions r "
               "WHERE o.zip = z.zip AND z.region = r.region "
               "AND o.amount BETWEEN 5 AND 90 AND z.region IN ('uk', 'us') "
               "GROUP BY o.city HAVING COUNT(*) > 0 ORDER BY city")
        built = []
        executor_module._exec_row_hook = built.append
        try:
            result = code.query(sql)
        finally:
            executor_module._exec_row_hook = None
        assert code.last_plan == "multiway"
        assert not built  # zero _ExecRow allocations end to end
        assert fingerprint(result) == fingerprint(row.query(sql))

    def test_parallel_multiway_across_real_processes(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "0")
        rng = random.Random(888)
        database = random_database(888, orders=40, zips=20, regions=12, cities=15)
        row = SQLEngine(database, use_columns=False)
        parallel = SQLEngine(database, engine="parallel", workers=2)
        for _ in range(8):
            assert_engines_agree(row, [parallel], random_multiway_query(rng))
            mutate(database, rng)

    @pytest.mark.parametrize("chunks", [1, 2, 7, 1000])
    def test_multiway_chunk_boundaries_are_invisible(self, chunks):
        from repro.engine.executor import SerialPool
        from repro.relational.sql.executor import SQLExecutor
        from repro.relational.sql.parser import parse_sql

        database = random_database(66)
        row = SQLEngine(database, use_columns=False)
        executor = SQLExecutor(database, pool=SerialPool(num_chunks=chunks))
        rng = random.Random(66)
        for _ in range(10):
            sql = random_multiway_query(rng)
            expected = fingerprint(row.query(sql))
            assert fingerprint(executor.execute(parse_sql(sql))) == expected, sql


class TestMultiwayPlanShape:
    def test_residual_predicates_fall_back_with_parity_and_reason(self):
        database = random_database(3)
        row = SQLEngine(database, use_columns=False)
        code = SQLEngine(database)
        sql = ("SELECT o.city, z.region, r.country FROM orders o, zips z, regions r "
               "WHERE o.zip = z.zip AND z.region = r.region "
               "AND LENGTH(o.city) >= 3 ORDER BY city, region, country")
        assert fingerprint(code.query(sql)) == fingerprint(row.query(sql))
        assert code.last_plan == "row"
        code.query(sql, explain=True)
        reasons = code.last_explain["why_not_multiway"]
        assert any("neither an equi key" in reason for reason in reasons)

    def test_disconnected_join_graph_reports_cross_product(self):
        database = random_database(4)
        code = SQLEngine(database)
        sql = ("SELECT o.city, z.region, c.mayor FROM orders o, zips z, cities c "
               "WHERE o.zip = z.zip")
        code.query(sql, explain=True)
        assert code.last_plan == "row"
        reasons = code.last_explain["why_not_multiway"]
        assert any("cross product" in reason for reason in reasons)

    def test_explain_reports_variable_order_and_candidates(self):
        database = random_database(5)
        code = SQLEngine(database)
        sql = ("SELECT o.city, r.gdp FROM orders o, zips z, regions r "
               "WHERE o.zip = z.zip AND z.region = r.region")
        code.query(sql, explain=True)
        assert code.last_plan == "multiway"
        block = code.last_explain["multiway"]
        assert block["tables"] == ["o", "z", "r"]
        assert len(block["order"]) == 2
        members = {frozenset(entry["members"]) for entry in block["order"]}
        assert frozenset(("o.zip", "z.zip")) in members
        assert frozenset(("z.region", "r.region")) in members
        for entry in block["order"]:
            assert entry["estimate"] >= 0
            assert entry["candidates"] >= 0
        report = code.explain(sql)
        assert "plan: multiway" in report
        assert "variable order:" in report

    def test_fd_hints_promote_implied_variables(self):
        from repro.constraints.fd import FunctionalDependency

        database = random_database(6)
        # region -> zip on zips: the region variable binds first (fewest
        # distinct values), after which the zip variable is FD-implied and
        # should be flagged in the recorded order
        hints = [FunctionalDependency("zips", ["region"], ["zip"])]
        plain = SQLEngine(database)
        hinted = SQLEngine(database, fds=hints)
        sql = ("SELECT o.city, r.gdp FROM orders o, zips z, regions r "
               "WHERE o.zip = z.zip AND z.region = r.region")
        plain.query(sql, explain=True)
        hinted.query(sql, explain=True)
        assert hinted.last_plan == plain.last_plan == "multiway"
        hinted_order = hinted.last_explain["multiway"]["order"]
        implied = [entry for entry in hinted_order if entry["fd_implied"]]
        assert len(implied) == 1
        assert frozenset(implied[0]["members"]) == frozenset(
            ("o.zip", "z.zip"))
        # the hint only reorders; results stay identical
        assert fingerprint(hinted.query(sql)) == fingerprint(plain.query(sql))

    def test_session_variable_cfds_feed_multiway_ordering(self):
        from repro.semandaq.session import SemandaqSession

        database = random_database(9)
        session = SemandaqSession(database)
        session.register_cfds("zips([region] -> [zip])")
        result, report = session.sql(
            "SELECT o.city, r.gdp FROM orders o, zips z, regions r "
            "WHERE o.zip = z.zip AND z.region = r.region", explain=True)
        assert "plan: multiway" in report
        assert "fd-implied" in report
