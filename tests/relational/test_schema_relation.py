"""Unit tests for schemas, relations and the database catalog."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CatalogError, RelationError, SchemaError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema, schema
from repro.relational.types import NULL, AttributeType, is_null


@pytest.fixture
def customer_schema():
    return RelationSchema("customer", [
        Attribute("cc", AttributeType.STRING),
        Attribute("ac", AttributeType.STRING),
        Attribute("phn", AttributeType.STRING),
        Attribute("city", AttributeType.STRING),
        Attribute("zip", AttributeType.STRING),
        Attribute("street", AttributeType.STRING),
    ])


class TestSchema:
    def test_attribute_positions_case_insensitive(self, customer_schema):
        assert customer_schema.position("ZIP") == 4
        assert customer_schema.canonical_name("ZIP") == "zip"

    def test_unknown_attribute_raises(self, customer_schema):
        with pytest.raises(SchemaError):
            customer_schema.position("country")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", [Attribute("a"), Attribute("A")])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", [])

    def test_project_preserves_order(self, customer_schema):
        projected = customer_schema.project(["zip", "cc"])
        assert projected.attribute_names == ("zip", "cc")

    def test_rename(self, customer_schema):
        renamed = customer_schema.rename({"phn": "phone"})
        assert renamed.has_attribute("phone")
        assert not renamed.has_attribute("phn")

    def test_rename_unknown_raises(self, customer_schema):
        with pytest.raises(SchemaError):
            customer_schema.rename({"nope": "x"})

    def test_extend(self, customer_schema):
        extended = customer_schema.extend([Attribute("country", AttributeType.STRING)])
        assert extended.arity == customer_schema.arity + 1

    def test_schema_helper(self):
        s = schema("r", a="string", n=AttributeType.INTEGER)
        assert s.attribute("n").type is AttributeType.INTEGER

    def test_equivalence_ignores_relation_name(self, customer_schema):
        other = customer_schema.renamed_relation("customer2")
        assert customer_schema.equivalent(other)
        assert customer_schema != other


class TestRelation:
    def test_insert_and_lookup(self, customer_schema):
        relation = Relation(customer_schema)
        tid = relation.insert(["44", "131", "1234567", "edi", "EH8", "mayfield"])
        assert relation.value(tid, "city") == "edi"
        assert len(relation) == 1

    def test_insert_dict_missing_attrs_become_null(self, customer_schema):
        relation = Relation(customer_schema)
        tid = relation.insert_dict({"cc": "44", "zip": "EH8"})
        assert is_null(relation.value(tid, "street"))

    def test_insert_dict_unknown_attr_raises(self, customer_schema):
        relation = Relation(customer_schema)
        with pytest.raises(SchemaError):
            relation.insert_dict({"nope": 1})

    def test_arity_mismatch_raises(self, customer_schema):
        relation = Relation(customer_schema)
        with pytest.raises(RelationError):
            relation.insert(["44"])

    def test_update_returns_old_value(self, customer_schema):
        relation = Relation(customer_schema)
        tid = relation.insert_dict({"cc": "44", "zip": "EH8", "city": "edi"})
        old = relation.update(tid, "city", "ldn")
        assert old == "edi"
        assert relation.value(tid, "city") == "ldn"

    def test_delete_removes_tid_and_never_reuses_it(self, customer_schema):
        relation = Relation(customer_schema)
        tid_first = relation.insert_dict({"cc": "44"})
        relation.delete(tid_first)
        tid_second = relation.insert_dict({"cc": "01"})
        assert tid_second != tid_first
        with pytest.raises(RelationError):
            relation.tuple(tid_first)

    def test_tids_are_stable_across_updates(self, customer_schema):
        relation = Relation(customer_schema)
        tids = [relation.insert_dict({"cc": str(i)}) for i in range(5)]
        relation.update(tids[2], "cc", "99")
        assert relation.tids() == tids

    def test_copy_is_deep(self, customer_schema):
        relation = Relation(customer_schema)
        tid = relation.insert_dict({"cc": "44"})
        clone = relation.copy()
        clone.update(tid, "cc", "01")
        assert relation.value(tid, "cc") == "44"

    def test_project_relation_distinct(self, customer_schema):
        relation = Relation(customer_schema)
        relation.insert_dict({"cc": "44", "zip": "EH8"})
        relation.insert_dict({"cc": "44", "zip": "EH8"})
        projected = relation.project_relation(["cc", "zip"], distinct=True)
        assert len(projected) == 1

    def test_filter_preserves_tids(self, customer_schema):
        relation = Relation(customer_schema)
        keep = relation.insert_dict({"cc": "44"})
        relation.insert_dict({"cc": "01"})
        filtered = relation.filter(lambda t: t["cc"] == "44")
        assert filtered.tids() == [keep]

    def test_active_domain_ignores_nulls(self, customer_schema):
        relation = Relation(customer_schema)
        relation.insert_dict({"cc": "44"})
        relation.insert_dict({"cc": NULL})
        assert relation.active_domain("cc") == {"44"}

    def test_column_and_null_count(self, customer_schema):
        relation = Relation(customer_schema)
        relation.insert_dict({"cc": "44"})
        relation.insert_dict({"zip": "EH8"})
        assert relation.null_count("cc") == 1
        assert relation.column("cc")[0] == "44"

    def test_pretty_renders_header(self, customer_schema):
        relation = Relation(customer_schema)
        relation.insert_dict({"cc": "44"})
        text = relation.pretty()
        assert "cc" in text and "44" in text

    def test_version_bumps_on_mutation(self, customer_schema):
        relation = Relation(customer_schema)
        before = relation.version
        relation.insert_dict({"cc": "44"})
        assert relation.version > before

    @given(st.lists(st.tuples(st.text(max_size=4), st.text(max_size=4)), max_size=30))
    def test_from_rows_roundtrip(self, rows):
        s = RelationSchema("r", [Attribute("a"), Attribute("b")])
        relation = Relation.from_rows(s, rows)
        assert len(relation) == len(rows)
        assert [tuple(t.values) for t in relation] == [tuple(r) for r in rows]


class TestDatabase:
    def test_add_and_lookup_case_insensitive(self, customer_schema):
        database = Database()
        database.add(Relation(customer_schema))
        assert database.relation("CUSTOMER").name == "customer"

    def test_duplicate_add_raises(self, customer_schema):
        database = Database()
        database.add(Relation(customer_schema))
        with pytest.raises(CatalogError):
            database.add(Relation(customer_schema))

    def test_replace_allowed(self, customer_schema):
        database = Database()
        database.add(Relation(customer_schema))
        replacement = Relation(customer_schema)
        replacement.insert_dict({"cc": "44"})
        database.add(replacement, replace=True)
        assert len(database.relation("customer")) == 1

    def test_unknown_relation_raises(self):
        database = Database()
        with pytest.raises(CatalogError):
            database.relation("ghost")

    def test_drop(self, customer_schema):
        database = Database()
        database.add(Relation(customer_schema))
        database.drop("customer")
        assert "customer" not in database

    def test_copy_is_deep(self, customer_schema):
        database = Database()
        relation = database.add(Relation(customer_schema))
        tid = relation.insert_dict({"cc": "44"})
        clone = database.copy()
        clone.relation("customer").update(tid, "cc", "01")
        assert database.relation("customer").value(tid, "cc") == "44"

    def test_total_tuples(self, customer_schema):
        database = Database()
        relation = database.add(Relation(customer_schema))
        relation.insert_dict({"cc": "44"})
        assert database.total_tuples() == 1
