"""Tests for the SQL tokenizer, parser and executor."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SQLExecutionError, SQLSyntaxError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.sql.engine import SQLEngine
from repro.relational.sql.parser import parse_sql
from repro.relational.sql.tokenizer import tokenize
from repro.relational.types import NULL, AttributeType, is_null


@pytest.fixture
def database():
    db = Database()
    customer_schema = RelationSchema("customer", [
        Attribute("cc", AttributeType.STRING),
        Attribute("ac", AttributeType.STRING),
        Attribute("phn", AttributeType.STRING),
        Attribute("city", AttributeType.STRING),
        Attribute("zip", AttributeType.STRING),
        Attribute("street", AttributeType.STRING),
    ])
    db.create_from_dicts(customer_schema, [
        {"cc": "44", "ac": "131", "phn": "1111", "city": "edi", "zip": "EH8", "street": "mayfield"},
        {"cc": "44", "ac": "131", "phn": "2222", "city": "edi", "zip": "EH8", "street": "mayfield"},
        {"cc": "44", "ac": "131", "phn": "3333", "city": "ldn", "zip": "EH8", "street": "crichton"},
        {"cc": "01", "ac": "908", "phn": "4444", "city": "mh", "zip": "07974", "street": "mtn ave"},
        {"cc": "01", "ac": "908", "phn": "4444", "city": "nyc", "zip": "07974", "street": "mtn ave"},
        {"cc": "01", "ac": "212", "phn": "5555", "city": "nyc", "zip": "10012", "street": NULL},
    ])
    orders_schema = RelationSchema("orders", [
        Attribute("phn", AttributeType.STRING),
        Attribute("amount", AttributeType.INTEGER),
    ])
    db.create_from_dicts(orders_schema, [
        {"phn": "1111", "amount": 10},
        {"phn": "1111", "amount": 20},
        {"phn": "4444", "amount": 30},
        {"phn": "9999", "amount": 40},
    ])
    return db


@pytest.fixture
def engine(database):
    return SQLEngine(database)


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SeLeCt * FrOm t")
        assert tokens[0].is_keyword("select")
        assert tokens[2].is_keyword("from")

    def test_string_escaping(self):
        tokens = tokenize("SELECT 'o''brien'")
        assert tokens[1].value == "o'brien"

    def test_comments_are_skipped(self):
        tokens = tokenize("SELECT 1 -- trailing comment\n FROM t")
        assert any(token.is_keyword("from") for token in tokens)

    def test_numbers(self):
        tokens = tokenize("SELECT 42, 3.14")
        assert tokens[1].value == "42"
        assert tokens[3].value == "3.14"

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT 'oops")

    def test_unexpected_character_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @x")


class TestParser:
    def test_simple_select(self):
        statement = parse_sql("SELECT a, b FROM t WHERE a = 1")
        assert len(statement.items) == 2
        assert statement.tables[0].relation_name == "t"
        assert statement.where is not None

    def test_aliases_and_qualified_columns(self):
        statement = parse_sql("SELECT t1.a AS x FROM t t1, t t2 WHERE t1.a = t2.a")
        assert statement.items[0].alias == "x"
        assert statement.tables[1].alias == "t2"

    def test_group_by_having(self):
        statement = parse_sql(
            "SELECT zip, COUNT(*) AS n FROM customer GROUP BY zip HAVING COUNT(*) > 1")
        assert len(statement.group_by) == 1
        assert statement.having is not None

    def test_union(self):
        statement = parse_sql("SELECT a FROM t UNION SELECT a FROM s")
        assert len(statement.selects) == 2

    def test_missing_from_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT a WHERE a = 1")

    def test_trailing_garbage_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT a FROM t nonsense extra ,")

    def test_empty_statement_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("   ")


class TestExecutorBasics:
    def test_select_star(self, engine):
        result = engine.query("SELECT * FROM customer")
        assert len(result) == 6
        assert result.schema.arity == 6

    def test_projection_and_alias(self, engine):
        result = engine.query("SELECT city AS town FROM customer WHERE cc = '44'")
        assert result.schema.has_attribute("town")
        assert len(result) == 3

    def test_where_and_or(self, engine):
        result = engine.query(
            "SELECT phn FROM customer WHERE cc = '01' AND (city = 'mh' OR city = 'nyc')")
        assert len(result) == 3

    def test_where_in_and_like(self, engine):
        result = engine.query("SELECT phn FROM customer WHERE city IN ('edi', 'ldn')")
        assert len(result) == 3
        result = engine.query("SELECT phn FROM customer WHERE street LIKE 'm%'")
        assert len(result) == 4

    def test_is_null(self, engine):
        result = engine.query("SELECT phn FROM customer WHERE street IS NULL")
        assert len(result) == 1
        result = engine.query("SELECT phn FROM customer WHERE street IS NOT NULL")
        assert len(result) == 5

    def test_null_comparison_is_unknown(self, engine):
        result = engine.query("SELECT phn FROM customer WHERE street = 'ghost'")
        assert len(result) == 0

    def test_distinct(self, engine):
        result = engine.query("SELECT DISTINCT cc FROM customer")
        assert len(result) == 2

    def test_order_by_and_limit(self, engine):
        result = engine.query("SELECT phn FROM customer ORDER BY phn DESC LIMIT 2")
        assert [t["phn"] for t in result] == ["5555", "4444"]

    def test_scalar_helper(self, engine):
        assert engine.scalar("SELECT COUNT(*) FROM customer") == 6

    def test_arithmetic_and_functions(self, engine):
        result = engine.query("SELECT amount * 2 AS doubled FROM orders WHERE phn = '1111'")
        assert sorted(t["doubled"] for t in result) == [20, 40]
        assert engine.scalar("SELECT UPPER(city) FROM customer WHERE phn = '4444'") == "MH"

    def test_unknown_relation_raises(self, engine):
        with pytest.raises(Exception):
            engine.query("SELECT * FROM ghost")

    def test_unknown_column_raises(self, engine):
        with pytest.raises(SQLExecutionError):
            engine.query("SELECT nothere FROM customer")


class TestExecutorJoinsAndGroups:
    def test_self_join_detects_pairs(self, engine):
        # pairs of tuples agreeing on zip but differing on street: the core
        # of CFD pair-violation detection.
        result = engine.query(
            "SELECT t1.phn, t2.phn FROM customer t1, customer t2 "
            "WHERE t1.zip = t2.zip AND t1.street <> t2.street")
        assert len(result) == 4  # two symmetric pairs

    def test_explicit_join_on(self, engine):
        result = engine.query(
            "SELECT c.city, o.amount FROM customer c JOIN orders o ON c.phn = o.phn")
        assert len(result) == 4

    def test_join_null_keys_do_not_match(self, engine, database):
        database.relation("orders").insert_dict({"phn": NULL, "amount": 99})
        result = engine.query(
            "SELECT c.city FROM customer c, orders o WHERE c.phn = o.phn")
        assert all(not is_null(t["city"]) for t in result)

    def test_group_by_count(self, engine):
        result = engine.query(
            "SELECT cc, COUNT(*) AS n FROM customer GROUP BY cc ORDER BY cc")
        assert [(t["cc"], t["n"]) for t in result] == [("01", 3), ("44", 3)]

    def test_group_by_having(self, engine):
        result = engine.query(
            "SELECT zip, COUNT(DISTINCT street) AS streets FROM customer "
            "GROUP BY zip HAVING COUNT(DISTINCT street) > 1")
        zips = {t["zip"] for t in result}
        assert zips == {"EH8"}

    def test_aggregates_without_group_by(self, engine):
        result = engine.query("SELECT COUNT(*) AS n, MAX(amount) AS top FROM orders")
        row = result.tuples()[0]
        assert row["n"] == 4 and row["top"] == 40

    def test_sum_avg_min(self, engine):
        row = engine.query(
            "SELECT SUM(amount) AS s, AVG(amount) AS a, MIN(amount) AS m FROM orders").tuples()[0]
        assert row["s"] == 100 and row["a"] == 25 and row["m"] == 10

    def test_union_distinct_and_all(self, engine):
        merged = engine.query(
            "SELECT cc FROM customer UNION SELECT cc FROM customer")
        assert len(merged) == 2

    def test_group_by_expression_key(self, engine):
        result = engine.query(
            "SELECT UPPER(city) AS c, COUNT(*) AS n FROM customer GROUP BY UPPER(city)")
        counts = {t["c"]: t["n"] for t in result}
        assert counts["EDI"] == 2

    def test_empty_group_result(self, engine):
        result = engine.query(
            "SELECT zip, COUNT(*) AS n FROM customer WHERE cc = 'nope' GROUP BY zip")
        assert len(result) == 0


class TestSQLAgainstAlgebraProperty:
    values = st.lists(st.tuples(st.sampled_from(["a", "b", "c", "d"]),
                                st.integers(0, 9)), min_size=0, max_size=50)

    @given(values)
    def test_group_count_matches_python(self, rows):
        db = Database()
        schema = RelationSchema("t", [
            Attribute("k", AttributeType.STRING), Attribute("v", AttributeType.INTEGER)])
        db.add(Relation.from_rows(schema, rows))
        engine = SQLEngine(db)
        result = engine.query("SELECT k, COUNT(*) AS n FROM t GROUP BY k")
        expected: dict[str, int] = {}
        for key, _ in rows:
            expected[key] = expected.get(key, 0) + 1
        assert {(t["k"], t["n"]) for t in result} == set(expected.items())

    @given(values)
    def test_where_filter_matches_python(self, rows):
        db = Database()
        schema = RelationSchema("t", [
            Attribute("k", AttributeType.STRING), Attribute("v", AttributeType.INTEGER)])
        db.add(Relation.from_rows(schema, rows))
        engine = SQLEngine(db)
        result = engine.query("SELECT k, v FROM t WHERE v >= 5")
        expected = [(k, v) for k, v in rows if v >= 5]
        assert sorted((t["k"], t["v"]) for t in result) == sorted(expected)


class TestCodeSetFastPath:
    """The columnar equality fast path must be invisible except in speed."""

    def test_fast_path_engages_for_string_equality(self, database):
        from repro.relational.sql.executor import _FromPlanner
        from repro.relational.sql.parser import parse_sql as parse
        statement = parse("SELECT t.phn FROM customer t WHERE t.city = 'edi'")
        planner = _FromPlanner(database, statement)
        table = statement.tables[0]
        conjuncts = statement.where and [statement.where] or []
        filters, rest = planner._split_code_filters(table, conjuncts, True)
        assert len(filters) == 1 and not rest
        codes, allowed = filters[0]
        assert allowed  # 'edi' is interned, so the code set is non-empty

    def test_same_rows_and_order_as_residual_evaluation(self, engine, database):
        fast = engine.query("SELECT t.* FROM customer t WHERE t.city = 'nyc'")
        # LENGTH() around the column defeats the fast path: same rows expected
        slow = engine.query(
            "SELECT t.* FROM customer t WHERE LOWER(t.city) = 'nyc'")
        assert [tuple(r.values) for r in fast] == [tuple(r.values) for r in slow]
        assert [r["phn"] for r in fast] == ["4444", "5555"]

    def test_unqualified_column_single_table(self, engine):
        result = engine.query("SELECT phn FROM customer WHERE city = 'edi'")
        assert [r["phn"] for r in result] == ["1111", "2222"]

    def test_null_cells_never_match(self, engine):
        result = engine.query("SELECT phn FROM customer WHERE street = 'mtn ave'")
        assert [r["phn"] for r in result] == ["4444", "4444"]  # NULL street excluded

    def test_unseen_constant_yields_empty(self, engine):
        assert len(engine.query("SELECT * FROM customer WHERE city = 'zzz'")) == 0

    def test_reversed_operands_and_joins(self, engine):
        result = engine.query(
            "SELECT o.amount AS amount FROM customer c, orders o "
            "WHERE c.phn = o.phn AND 'edi' = c.city ORDER BY amount")
        assert [r["amount"] for r in result] == [10, 20]

    def test_numeric_literal_stays_on_residual_path(self, engine):
        # INTEGER column: '=' must keep SQL numeric semantics (1 == 1.0)
        result = engine.query("SELECT phn FROM orders WHERE amount = 10")
        assert [r["phn"] for r in result] == ["1111"]

    def test_repeated_conjuncts_intersect(self, engine):
        result = engine.query(
            "SELECT phn FROM customer WHERE city = 'nyc' AND city = 'edi'")
        assert len(result) == 0

    def test_mixed_fast_and_residual_conjuncts(self, engine):
        result = engine.query(
            "SELECT phn FROM customer WHERE city = 'nyc' AND LENGTH(phn) = 4")
        assert [r["phn"] for r in result] == ["4444", "5555"]


class TestCodeSetPushdownExtensions:
    """IN lists and != string conjuncts ride the same dictionary fast path."""

    def _filters(self, database, sql):
        from repro.relational.sql.executor import _FromPlanner
        statement = parse_sql(sql)
        planner = _FromPlanner(database, statement)
        table = statement.tables[0]
        conjuncts = [statement.where] if statement.where is not None else []
        return planner._split_code_filters(table, conjuncts, True)

    def test_in_list_fast_path_engages(self, database):
        filters, rest = self._filters(
            database, "SELECT phn FROM customer WHERE city IN ('edi', 'ldn')")
        assert len(filters) == 1 and not rest
        _, allowed = filters[0]
        assert len(allowed) == 2  # both literals are interned

    def test_not_equal_fast_path_engages(self, database):
        filters, rest = self._filters(
            database, "SELECT phn FROM customer WHERE city != 'edi'")
        assert len(filters) == 1 and not rest
        _, allowed = filters[0]
        assert allowed  # the complement over the dictionary is non-empty

    def test_in_list_rows_and_order(self, engine):
        result = engine.query(
            "SELECT phn FROM customer WHERE city IN ('edi', 'ldn')")
        assert [r["phn"] for r in result] == ["1111", "2222", "3333"]

    def test_in_list_with_unseen_member(self, engine):
        result = engine.query(
            "SELECT phn FROM customer WHERE city IN ('zzz', 'mh')")
        assert [r["phn"] for r in result] == ["4444"]

    def test_not_equal_excludes_match_and_nulls(self, engine):
        # NULL street must be excluded (NULL != 'x' is UNKNOWN), like the
        # residual path
        result = engine.query("SELECT phn FROM customer WHERE street != 'mayfield'")
        assert [r["phn"] for r in result] == ["3333", "4444", "4444"]

    def test_not_equal_matches_residual_evaluation(self, engine):
        fast = engine.query("SELECT t.* FROM customer t WHERE t.city != 'nyc'")
        # LOWER() around the column defeats the fast path: same rows expected
        slow = engine.query("SELECT t.* FROM customer t WHERE LOWER(t.city) != 'nyc'")
        assert [tuple(r.values) for r in fast] == [tuple(r.values) for r in slow]

    def test_diamond_operator(self, engine):
        fast = engine.query("SELECT phn FROM customer WHERE city <> 'edi'")
        assert [r["phn"] for r in fast] == ["3333", "4444", "4444", "5555"]

    def test_not_in_list(self, engine):
        result = engine.query(
            "SELECT phn FROM customer WHERE city NOT IN ('edi', 'nyc')")
        assert [r["phn"] for r in result] == ["3333", "4444"]

    def test_not_in_matches_residual_evaluation(self, engine):
        fast = engine.query(
            "SELECT t.phn AS phn FROM customer t WHERE t.city NOT IN ('edi', 'ldn')")
        slow = engine.query(
            "SELECT t.phn AS phn FROM customer t "
            "WHERE LOWER(t.city) NOT IN ('edi', 'ldn')")
        assert [r["phn"] for r in fast] == [r["phn"] for r in slow]

    def test_numeric_in_stays_on_residual_path(self, database, engine):
        filters, rest = self._filters(
            database, "SELECT phn FROM orders WHERE amount IN (10, 30)")
        assert not filters and len(rest) == 1
        result = engine.query("SELECT phn FROM orders WHERE amount IN (10, 30)")
        assert [r["phn"] for r in result] == ["1111", "4444"]

    def test_in_over_joins_uses_qualifier(self, engine):
        result = engine.query(
            "SELECT o.amount AS amount FROM customer c, orders o "
            "WHERE c.phn = o.phn AND c.city IN ('edi') ORDER BY amount")
        assert [r["amount"] for r in result] == [10, 20]


class TestRangePushdown:
    """Range comparisons and BETWEEN compile to dictionary-code sets."""

    def _filters(self, database, sql):
        from repro.relational.sql.executor import _FromPlanner
        statement = parse_sql(sql)
        planner = _FromPlanner(database, statement)
        table = statement.tables[0]
        conjuncts = [statement.where] if statement.where is not None else []
        return planner._split_code_filters(table, conjuncts, True)

    def test_integer_range_fast_path_engages(self, database):
        filters, rest = self._filters(
            database, "SELECT phn FROM orders WHERE amount >= 20")
        assert len(filters) == 1 and not rest

    def test_string_range_fast_path_engages(self, database):
        filters, rest = self._filters(
            database, "SELECT phn FROM customer WHERE city < 'm'")
        assert len(filters) == 1 and not rest

    def test_range_rows_and_order(self, engine):
        result = engine.query("SELECT phn FROM orders WHERE amount > 15")
        assert [r["phn"] for r in result] == ["1111", "4444", "9999"]
        result = engine.query("SELECT phn FROM orders WHERE amount <= 20")
        assert [r["phn"] for r in result] == ["1111", "1111"]

    def test_reversed_operands_flip(self, engine):
        result = engine.query("SELECT phn FROM orders WHERE 30 <= amount")
        assert [r["phn"] for r in result] == ["4444", "9999"]

    def test_between_desugars_to_two_ranges(self, database, engine):
        from repro.relational.sql.executor import _FromPlanner
        statement = parse_sql("SELECT phn FROM orders WHERE amount BETWEEN 20 AND 30")
        planner = _FromPlanner(database, statement)
        from repro.relational.sql.columnar import flatten_conjuncts
        conjuncts = flatten_conjuncts(statement.where)
        filters, rest = planner._split_code_filters(statement.tables[0], conjuncts, True)
        assert len(filters) == 2 and not rest
        result = engine.query("SELECT phn FROM orders WHERE amount BETWEEN 20 AND 30")
        assert [r["phn"] for r in result] == ["1111", "4444"]

    def test_negative_literal_folds(self, engine):
        result = engine.query("SELECT phn FROM orders WHERE amount > -1")
        assert len(result) == 4

    def test_null_bound_selects_nothing(self, engine):
        assert len(engine.query("SELECT phn FROM orders WHERE amount < NULL")) == 0

    def test_null_cells_never_match(self, engine, database):
        database.relation("orders").insert_dict({"phn": NULL, "amount": NULL})
        assert len(engine.query("SELECT phn FROM orders WHERE amount >= 0")) == 4
        assert len(engine.query("SELECT phn FROM orders WHERE amount <= 99")) == 4

    def test_range_matches_residual_evaluation(self, engine):
        fast = engine.query("SELECT phn FROM orders WHERE amount >= 20")
        slow = engine.query("SELECT phn FROM orders WHERE ABS(amount) >= 20")
        assert [r["phn"] for r in fast] == [r["phn"] for r in slow]

    def test_cross_type_comparison_matches_row_semantics(self, engine):
        # sort_key orders every number before every string
        assert len(engine.query("SELECT phn FROM customer WHERE city > 5")) == 6
        assert len(engine.query("SELECT phn FROM customer WHERE city < 5")) == 0

    def test_not_between_stays_residual(self, database, engine):
        filters, rest = self._filters(
            database, "SELECT phn FROM orders WHERE amount NOT BETWEEN 20 AND 30")
        assert not filters and len(rest) == 1
        result = engine.query(
            "SELECT phn FROM orders WHERE amount NOT BETWEEN 20 AND 30")
        assert [r["phn"] for r in result] == ["1111", "9999"]


class TestCodeNativePlans:
    """Single-table scan/filter/group/aggregate plans bypass _ExecRow."""

    def _count_exec_rows(self, engine, sql):
        from repro.relational.sql import executor as executor_module
        built = []
        executor_module._exec_row_hook = built.append
        try:
            result = engine.query(sql)
        finally:
            executor_module._exec_row_hook = None
        return result, len(built)

    def test_plain_scan_builds_no_exec_rows(self, engine):
        result, count = self._count_exec_rows(
            engine, "SELECT phn, city FROM customer WHERE cc = '44'")
        assert count == 0 and engine.last_plan == "code"
        assert [r["phn"] for r in result] == ["1111", "2222", "3333"]

    def test_range_group_aggregate_builds_no_exec_rows(self, engine):
        result, count = self._count_exec_rows(
            engine,
            "SELECT phn, COUNT(*) AS n, SUM(amount) AS s FROM orders "
            "WHERE amount >= 10 AND amount <= 30 GROUP BY phn")
        assert count == 0 and engine.last_plan == "code"
        assert [(r["phn"], r["n"], r["s"]) for r in result] == \
            [("1111", 2, 30), ("4444", 1, 30)]

    def test_equi_join_builds_no_exec_rows(self, engine):
        result, count = self._count_exec_rows(
            engine, "SELECT c.city FROM customer c JOIN orders o ON c.phn = o.phn")
        assert count == 0 and engine.last_plan == "join"
        assert len(result) == 4

    def test_non_equi_join_falls_back(self, engine):
        _, count = self._count_exec_rows(
            engine, "SELECT t1.phn, t2.phn FROM customer t1, customer t2 "
                    "WHERE t1.zip = t2.zip AND t1.street <> t2.street")
        assert count > 0 and engine.last_plan == "row"

    def test_residual_predicate_falls_back(self, engine):
        _, count = self._count_exec_rows(
            engine, "SELECT phn FROM customer WHERE LENGTH(city) = 3")
        assert count > 0 and engine.last_plan == "row"

    def test_group_by_expression_falls_back(self, engine):
        _, count = self._count_exec_rows(
            engine, "SELECT UPPER(city) AS c, COUNT(*) AS n FROM customer "
                    "GROUP BY UPPER(city)")
        assert count > 0 and engine.last_plan == "row"

    def test_min_max_ride_dictionary_order(self, engine):
        result = engine.query(
            "SELECT MIN(city) AS lo, MAX(city) AS hi FROM customer")
        row = result.tuples()[0]
        assert (row["lo"], row["hi"]) == ("edi", "nyc")
        assert engine.last_plan == "code"

    def test_count_distinct_on_codes(self, engine):
        assert engine.scalar(
            "SELECT COUNT(DISTINCT street) FROM customer") == 3
        assert engine.last_plan == "code"

    def test_order_by_rides_rank_index(self, engine):
        result = engine.query(
            "SELECT phn, city FROM customer WHERE cc = '01' ORDER BY city DESC, phn")
        assert engine.last_plan == "code"
        assert [r["phn"] for r in result] == ["4444", "5555", "4444"]

    def test_aggregate_over_empty_relation(self, engine):
        result = engine.query(
            "SELECT COUNT(*) AS n, SUM(amount) AS s FROM orders WHERE amount > 999")
        row = result.tuples()[0]
        assert row["n"] == 0 and is_null(row["s"])
        assert engine.last_plan == "code"

    def test_having_over_codes(self, engine):
        result = engine.query(
            "SELECT zip, COUNT(*) AS n FROM customer GROUP BY zip "
            "HAVING COUNT(*) > 1 AND zip = 'EH8'")
        assert [(r["zip"], r["n"]) for r in result] == [("EH8", 3)]
        assert engine.last_plan == "code"

    def test_embedded_aggregate_in_item(self, engine):
        result = engine.query(
            "SELECT zip, COUNT(*) + 1 AS n1 FROM customer GROUP BY zip ORDER BY zip")
        assert [(r["zip"], r["n1"]) for r in result] == \
            [("07974", 3), ("10012", 2), ("EH8", 4)]

    def test_use_columns_false_disables_everything(self, database):
        engine = SQLEngine(database, use_columns=False)
        result = engine.query("SELECT phn FROM customer WHERE city = 'edi'")
        assert engine.last_plan == "row"
        assert [r["phn"] for r in result] == ["1111", "2222"]
