"""Randomized parity: code-native SQL execution is identical to the row path.

Single-table scan/filter/group/aggregate statements run on dictionary
codes by default (``repro.relational.sql.columnar``); ``use_columns=False``
keeps the historical row-at-a-time execution.  These tests generate random
relations and random queries over the features the code path covers —
ranges, BETWEEN, IN / NOT IN, GROUP BY with every aggregate, HAVING,
ORDER BY, DISTINCT, LIMIT, plus residual predicates that force the
fallback — and assert the result relations are *identical* (rows, order,
names, inferred types) across the row path, the in-process code path, the
chunked serial pool and real process pools, with interleaved
insert/delete/update mutations between queries.
"""

import random

import pytest

from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.sql.engine import SQLEngine
from repro.relational.types import NULL, AttributeType

SCHEMA = RelationSchema("t", [
    Attribute("city", AttributeType.STRING),
    Attribute("zip", AttributeType.STRING),
    Attribute("amount", AttributeType.INTEGER),
    Attribute("score", AttributeType.FLOAT),
])

CITIES = ["edi", "ldn", "nyc", "mh", "sfo"]
ZIPS = ["EH8", "07974", "10012"]


def random_relation(seed: int, size: int = 80, null_rate: float = 0.12) -> Relation:
    rng = random.Random(seed)
    relation = Relation(SCHEMA)
    for _ in range(size):
        relation.insert(_random_row(rng, null_rate))
    return relation


def _random_row(rng: random.Random, null_rate: float = 0.12) -> list:
    return [
        NULL if rng.random() < null_rate else rng.choice(CITIES),
        NULL if rng.random() < null_rate else rng.choice(ZIPS),
        NULL if rng.random() < null_rate else rng.randrange(100),
        NULL if rng.random() < null_rate else round(rng.random() * 10, 3),
    ]


def mutate(relation: Relation, rng: random.Random, steps: int = 10) -> None:
    for _ in range(steps):
        action = rng.random()
        tids = relation.tids()
        if action < 0.45 or not tids:
            relation.insert(_random_row(rng))
        elif action < 0.7:
            relation.delete(rng.choice(tids))
        else:
            attribute = rng.choice(["city", "zip", "amount", "score"])
            value = {"city": rng.choice(CITIES), "zip": rng.choice(ZIPS),
                     "amount": rng.randrange(100),
                     "score": round(rng.random() * 10, 3)}[attribute]
            relation.update(rng.choice(tids),
                            attribute, NULL if rng.random() < 0.2 else value)


def random_where(rng: random.Random) -> str:
    predicates = []
    for _ in range(rng.randrange(1, 3)):
        kind = rng.randrange(7)
        if kind == 0:
            predicates.append(f"amount {rng.choice(['<', '<=', '>', '>='])} "
                              f"{rng.randrange(100)}")
        elif kind == 1:
            low = rng.randrange(60)
            predicates.append(f"amount BETWEEN {low} AND {low + rng.randrange(40)}")
        elif kind == 2:
            predicates.append(f"score {rng.choice(['<', '<=', '>', '>='])} "
                              f"{round(rng.random() * 10, 2)}")
        elif kind == 3:
            predicates.append(f"city = '{rng.choice(CITIES)}'")
        elif kind == 4:
            members = ", ".join(f"'{c}'" for c in rng.sample(CITIES, 2))
            predicates.append(f"city {rng.choice(['IN', 'NOT IN'])} ({members})")
        elif kind == 5:
            predicates.append(f"zip != '{rng.choice(ZIPS)}'")
        else:
            # residual conjunct: exercises the row-path fallback parity
            predicates.append(f"LENGTH(city) >= {rng.randrange(2, 4)}")
    return " AND ".join(predicates)


def random_query(rng: random.Random) -> str:
    where = f" WHERE {random_where(rng)}" if rng.random() < 0.8 else ""
    if rng.random() < 0.5:  # grouped
        group = rng.choice(["city", "zip", "city, zip"])
        aggregates = rng.sample([
            "COUNT(*) AS n", "COUNT(amount) AS c", "COUNT(DISTINCT city) AS d",
            "MIN(amount) AS lo", "MAX(score) AS hi", "SUM(amount) AS s",
            "AVG(score) AS a", "SUM(DISTINCT amount) AS sd",
        ], rng.randrange(1, 4))
        select = ", ".join([group] + aggregates)
        having = " HAVING COUNT(*) > 1" if rng.random() < 0.3 else ""
        order = f" ORDER BY {group.split(', ')[0]}" if rng.random() < 0.5 else ""
        limit = f" LIMIT {rng.randrange(1, 8)}" if rng.random() < 0.3 else ""
        return f"SELECT {select} FROM t{where} GROUP BY {group}{having}{order}{limit}"
    distinct = "DISTINCT " if rng.random() < 0.3 else ""
    columns = ", ".join(rng.sample(["city", "zip", "amount", "score"],
                                   rng.randrange(1, 4)))
    order = ""
    if rng.random() < 0.6:
        keys = rng.sample(columns.split(", "), rng.randrange(1, columns.count(",") + 2))
        order = " ORDER BY " + ", ".join(
            f"{key}{rng.choice(['', ' DESC'])}" for key in keys)
    limit = f" LIMIT {rng.randrange(1, 12)}" if rng.random() < 0.4 else ""
    return f"SELECT {distinct}{columns} FROM t{where}{order}{limit}"


def fingerprint(result: Relation):
    return ([a.name for a in result.schema.attributes],
            [a.type for a in result.schema.attributes],
            [t.values for t in result])


def assert_engines_agree(reference: SQLEngine, others: list[SQLEngine], sql: str) -> None:
    expected = fingerprint(reference.query(sql))
    assert reference.last_plan == "row"
    for engine in others:
        assert fingerprint(engine.query(sql)) == expected, sql


class TestRandomizedParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_code_path_matches_row_path(self, seed):
        rng = random.Random(1000 + seed)
        database = Database()
        database.add(random_relation(seed))
        row = SQLEngine(database, use_columns=False)
        code = SQLEngine(database)
        serial = SQLEngine(database, engine="serial")
        for _ in range(25):
            assert_engines_agree(row, [code, serial], random_query(rng))
            mutate(database.relation("t"), rng)

    def test_zero_exec_rows_on_the_code_path(self):
        from repro.relational.sql import executor as executor_module

        database = Database()
        database.add(random_relation(77, size=60))
        code = SQLEngine(database)
        row = SQLEngine(database, use_columns=False)
        sql = ("SELECT zip, COUNT(*) AS n, MIN(amount) AS lo, AVG(score) AS a "
               "FROM t WHERE amount BETWEEN 10 AND 80 AND city IN ('edi', 'nyc') "
               "GROUP BY zip HAVING COUNT(*) > 1 ORDER BY zip")
        built = []
        executor_module._exec_row_hook = built.append
        try:
            result = code.query(sql)
        finally:
            executor_module._exec_row_hook = None
        assert code.last_plan == "code"
        assert not built  # zero _ExecRow allocations end to end
        assert fingerprint(result) == fingerprint(row.query(sql))

    def test_parallel_engine_across_real_processes(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "0")
        rng = random.Random(4242)
        database = Database()
        database.add(random_relation(4242, size=70))
        row = SQLEngine(database, use_columns=False)
        parallel = SQLEngine(database, engine="parallel", workers=2)
        for _ in range(12):
            assert_engines_agree(row, [parallel], random_query(rng))
            mutate(database.relation("t"), rng)

    def test_mutation_between_queries_rebroadcasts(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "0")
        database = Database()
        database.add(random_relation(9, size=40))
        relation = database.relation("t")
        row = SQLEngine(database, use_columns=False)
        parallel = SQLEngine(database, engine="parallel", workers=2)
        sql = "SELECT city, COUNT(*) AS n FROM t WHERE amount >= 0 GROUP BY city"
        assert_engines_agree(row, [parallel], sql)
        relation.insert(["edi", "EH8", 0, 1.0])  # new rows must reach the workers
        relation.update(relation.tids()[0], "city", "brand-new-city")
        assert_engines_agree(row, [parallel], sql)

    @pytest.mark.parametrize("chunks", [1, 2, 3, 7, 1000])
    def test_chunk_boundaries_are_invisible(self, chunks):
        from repro.engine.executor import SerialPool
        from repro.relational.sql.executor import SQLExecutor
        from repro.relational.sql.parser import parse_sql

        database = Database()
        database.add(random_relation(31, size=50))
        row = SQLEngine(database, use_columns=False)
        executor = SQLExecutor(database, pool=SerialPool(num_chunks=chunks))
        rng = random.Random(31)
        for _ in range(10):
            sql = random_query(rng)
            expected = fingerprint(row.query(sql))
            statement = parse_sql(sql)
            assert fingerprint(executor.execute(statement)) == expected, sql


class TestAggregateEdgeCases:
    """Pin grouped-aggregate corners to the row-path semantics."""

    def _database(self, rows):
        database = Database()
        database.add(Relation.from_rows(SCHEMA, rows))
        return database

    def test_avg_over_all_null_group_is_null(self):
        database = self._database([
            ("edi", "EH8", NULL, NULL), ("edi", "EH8", NULL, NULL),
            ("nyc", "10012", 4, 2.0), ("nyc", "10012", 6, NULL)])
        row = SQLEngine(database, use_columns=False)
        code = SQLEngine(database)
        sql = ("SELECT city, AVG(amount) AS a, AVG(score) AS sc, "
               "COUNT(amount) AS n FROM t GROUP BY city ORDER BY city")
        expected = fingerprint(row.query(sql))
        assert fingerprint(code.query(sql)) == expected
        assert code.last_plan == "code"
        # the edi group aggregates zero non-NULL values: AVG is NULL, not 0/0
        names, _, rows = fingerprint(code.query(sql))
        edi = dict(zip(names, rows[0]))
        assert edi["a"] is NULL and edi["sc"] is NULL and edi["n"] == 0

    def test_sum_over_group_emptied_by_having_disappears(self):
        database = self._database([
            ("edi", "EH8", NULL, 1.0), ("nyc", "10012", 4, 2.0),
            ("nyc", "10012", 6, 3.0)])
        row = SQLEngine(database, use_columns=False)
        code = SQLEngine(database)
        # edi's SUM(amount) folds zero values -> NULL; HAVING drops it
        sql = ("SELECT city, SUM(amount) AS s FROM t GROUP BY city "
               "HAVING SUM(amount) > 0 ORDER BY city")
        expected = fingerprint(row.query(sql))
        assert fingerprint(code.query(sql)) == expected
        names, _, rows = fingerprint(code.query(sql))
        assert [r[0] for r in rows] == ["nyc"]
        # without HAVING the all-NULL group surfaces with a NULL sum
        bare = "SELECT city, SUM(amount) AS s FROM t GROUP BY city ORDER BY city"
        assert fingerprint(code.query(bare)) == fingerprint(row.query(bare))
        assert fingerprint(code.query(bare))[2][0] == ("edi", NULL)


class TestOrderByLimitTopK:
    """ORDER BY ... LIMIT k on plain scans runs as a top-k heap selection."""

    @pytest.mark.parametrize("order, limit", [
        ("amount", 5), ("amount DESC", 5), ("city, amount DESC", 7),
        ("score DESC, zip", 1), ("amount", 0),
    ])
    def test_top_k_matches_full_sort(self, order, limit):
        database = Database()
        database.add(random_relation(52, size=90))
        row = SQLEngine(database, use_columns=False)
        code = SQLEngine(database)
        sql = f"SELECT city, zip, amount, score FROM t ORDER BY {order} LIMIT {limit}"
        assert fingerprint(code.query(sql)) == fingerprint(row.query(sql))
        assert code.last_plan == "code"

    def test_explain_records_the_heap_selection(self):
        database = Database()
        database.add(random_relation(52, size=90))
        code = SQLEngine(database)
        report = code.explain("SELECT city FROM t ORDER BY city LIMIT 3")
        rows_in = len(database.relation("t").tids())
        assert code.last_explain["order"] == {"top_k": 3, "rows_in": rows_in}
        assert f"order by: top-3 heap selection on rank tuples over " \
               f"{rows_in} rows (LIMIT push-down)" in report

    def test_limit_at_or_past_row_count_sorts_fully(self):
        database = Database()
        database.add(random_relation(52, size=20))
        row = SQLEngine(database, use_columns=False)
        code = SQLEngine(database)
        sql = "SELECT city, amount FROM t ORDER BY amount LIMIT 1000"
        assert fingerprint(code.query(sql)) == fingerprint(row.query(sql))
        code.query(sql, explain=True)
        assert code.last_explain.get("order") is None  # no pruning to report

    def test_top_k_survives_where_and_mutations(self):
        database = Database()
        database.add(random_relation(14, size=60))
        relation = database.relation("t")
        row = SQLEngine(database, use_columns=False)
        code = SQLEngine(database)
        rng = random.Random(14)
        sql = ("SELECT city, amount FROM t WHERE amount >= 10 "
               "ORDER BY amount DESC, city LIMIT 6")
        for _ in range(5):
            assert fingerprint(code.query(sql)) == fingerprint(row.query(sql))
            assert code.last_plan == "code"
            mutate(relation, rng)
