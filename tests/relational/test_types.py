"""Unit tests for value types, NULL semantics and coercion."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TypeMismatchError
from repro.relational.types import (
    NULL,
    AttributeType,
    coerce_value,
    infer_type,
    is_null,
    sort_key,
    value_repr,
)


class TestNull:
    def test_null_is_singleton(self):
        assert NULL is type(NULL)()

    def test_is_null_accepts_none_and_marker(self):
        assert is_null(None)
        assert is_null(NULL)
        assert not is_null(0)
        assert not is_null("")
        assert not is_null(False)

    def test_null_is_falsy(self):
        assert not NULL

    def test_null_equality_and_hash(self):
        assert NULL == NULL
        assert hash(NULL) == hash(NULL)
        assert NULL != 0


class TestCoercion:
    def test_string_from_number(self):
        assert coerce_value(44, AttributeType.STRING) == "44"
        assert coerce_value(3.0, AttributeType.STRING) == "3"
        assert coerce_value(3.5, AttributeType.STRING) == "3.5"

    def test_string_passthrough(self):
        assert coerce_value("mh", AttributeType.STRING) == "mh"

    def test_integer_from_string(self):
        assert coerce_value(" 908 ", AttributeType.INTEGER) == 908

    def test_integer_from_float_whole(self):
        assert coerce_value(4.0, AttributeType.INTEGER) == 4

    def test_integer_from_float_fractional_fails(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(4.5, AttributeType.INTEGER)

    def test_integer_from_bad_string_fails(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("abc", AttributeType.INTEGER)

    def test_float_from_string(self):
        assert coerce_value("2.5", AttributeType.FLOAT) == 2.5

    def test_float_nan_becomes_null(self):
        assert is_null(coerce_value(float("nan"), AttributeType.FLOAT))

    def test_boolean_parsing(self):
        assert coerce_value("true", AttributeType.BOOLEAN) is True
        assert coerce_value("No", AttributeType.BOOLEAN) is False
        assert coerce_value(1, AttributeType.BOOLEAN) is True

    def test_boolean_bad_string_fails(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("maybe", AttributeType.BOOLEAN)

    def test_null_passthrough_all_types(self):
        for attr_type in AttributeType:
            assert is_null(coerce_value(None, attr_type))
            assert is_null(coerce_value(NULL, attr_type))

    def test_empty_string_is_null_for_non_string(self):
        assert is_null(coerce_value("", AttributeType.INTEGER))
        assert coerce_value("", AttributeType.STRING) == ""


class TestInference:
    def test_integer_column(self):
        assert infer_type(["1", "2", "3"]) is AttributeType.INTEGER

    def test_float_column(self):
        assert infer_type(["1.5", "2"]) is AttributeType.FLOAT

    def test_string_column(self):
        assert infer_type(["a", "1"]) is AttributeType.STRING

    def test_boolean_column(self):
        assert infer_type(["true", "false"]) is AttributeType.BOOLEAN

    def test_all_null_defaults_to_string(self):
        assert infer_type([None, "", NULL]) is AttributeType.STRING


class TestSortKeyAndRepr:
    def test_nulls_sort_first(self):
        values = ["b", NULL, "a", 3]
        ordered = sorted(values, key=sort_key)
        assert is_null(ordered[0])

    def test_value_repr(self):
        assert value_repr(NULL) == "NULL"
        assert value_repr("x") == "'x'"
        assert value_repr(True) == "true"
        assert value_repr(3) == "3"

    @given(st.lists(st.one_of(st.integers(-1000, 1000), st.text(max_size=5),
                              st.booleans(), st.none()), max_size=30))
    def test_sort_key_total_order(self, values):
        # sorting never raises and is stable w.r.t. repeated sorting
        once = sorted(values, key=sort_key)
        twice = sorted(once, key=sort_key)
        assert once == twice


class TestRoundTripProperty:
    @given(st.integers(-10**9, 10**9))
    def test_integer_roundtrip_through_string(self, value):
        text = coerce_value(value, AttributeType.STRING)
        assert coerce_value(text, AttributeType.INTEGER) == value

    @given(st.text(alphabet=st.characters(blacklist_categories=("Cs",)), max_size=20))
    def test_string_coercion_is_identity(self, value):
        assert coerce_value(value, AttributeType.STRING) == value
