"""Tests for BatchRepair, IncRepair and repair-quality metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.cfd import CFD
from repro.constraints.parse import parse_cfd
from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.detection.batch import BatchCFDDetector
from repro.detection.cfd_detect import detect_cfd_violations
from repro.errors import RepairError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.repair.batch_repair import BatchRepair, repair_relation
from repro.repair.cost import CostModel
from repro.repair.inc_repair import IncRepair
from repro.repair.quality import evaluate_repair


CUSTOMER_SCHEMA = RelationSchema("customer", [
    Attribute("cc"), Attribute("ac"), Attribute("phn"),
    Attribute("city"), Attribute("zip"), Attribute("street"),
])

ROWS = [
    {"cc": "44", "ac": "131", "phn": "1111", "city": "edi", "zip": "EH8", "street": "mayfield"},
    {"cc": "44", "ac": "131", "phn": "2222", "city": "edi", "zip": "EH8", "street": "mayfield"},
    {"cc": "44", "ac": "131", "phn": "3333", "city": "ldn", "zip": "EH8", "street": "crichton"},
    {"cc": "01", "ac": "908", "phn": "4444", "city": "mh", "zip": "07974", "street": "mtn ave"},
    {"cc": "01", "ac": "908", "phn": "4444", "city": "nyc", "zip": "07974", "street": "mtn ave"},
]

CFDS = [
    parse_cfd("customer([cc='44', zip] -> [street])"),
    parse_cfd("customer([cc='44', zip] -> [city])"),
    parse_cfd("customer([cc='01', ac='908'] -> [city='mh'])"),
]


@pytest.fixture
def customer():
    return Relation.from_dicts(CUSTOMER_SCHEMA, ROWS)


class TestBatchRepair:
    def test_repair_produces_clean_relation(self, customer):
        result = BatchRepair(customer, CFDS).repair()
        assert result.converged
        assert detect_cfd_violations(result.relation, CFDS).is_clean()

    def test_original_relation_untouched(self, customer):
        before = [t.as_dict() for t in customer]
        BatchRepair(customer, CFDS).repair()
        assert [t.as_dict() for t in customer] == before

    def test_majority_value_wins(self, customer):
        result = BatchRepair(customer, CFDS).repair()
        # two 'mayfield'/'edi' tuples vs one 'crichton'/'ldn' tuple: majority wins
        assert result.relation.value(2, "street") == "mayfield"
        assert result.relation.value(2, "city") == "edi"

    def test_constant_pattern_enforced(self, customer):
        result = BatchRepair(customer, CFDS).repair()
        assert result.relation.value(4, "city") == "mh"

    def test_changes_and_cost_recorded(self, customer):
        result = BatchRepair(customer, CFDS).repair()
        changed = result.changed_cells
        assert (2, "street") in changed and (4, "city") in changed
        assert result.cost > 0
        assert "changed" in result.summary()

    def test_clean_input_needs_no_changes(self, customer):
        clean_cfd = parse_cfd("customer([cc='86', zip] -> [street])")
        result = BatchRepair(customer, [clean_cfd]).repair()
        assert result.changes == [] and result.cost == 0 and result.converged

    def test_weights_steer_the_repair(self, customer):
        model = CostModel()
        # trust the 'crichton' cell a lot more than the 'mayfield' ones
        model.set_weight(2, "street", 25.0)
        model.set_weight(2, "city", 25.0)
        result = BatchRepair(customer, CFDS[:2], cost_model=model).repair()
        assert result.relation.value(0, "street") == "crichton"

    def test_ordering_option_validated(self, customer):
        with pytest.raises(RepairError):
            BatchRepair(customer, CFDS, ordering="nonsense")

    def test_both_orderings_produce_clean_repairs(self, customer):
        for ordering in BatchRepair.ORDERINGS:
            result = BatchRepair(customer, CFDS, ordering=ordering).repair()
            assert detect_cfd_violations(result.relation, CFDS).is_clean()

    def test_conflicting_constants_are_resolved_by_breaking_lhs(self):
        schema = RelationSchema("r", [Attribute("a"), Attribute("b")])
        relation = Relation.from_dicts(schema, [{"a": "k", "b": "x"}])
        conflicting = [
            CFD.single("r", ["a"], ["b"], {"a": "k", "b": "v1"}),
            CFD.single("r", ["a"], ["b"], {"a": "k", "b": "v2"}),
        ]
        result = BatchRepair(relation, conflicting).repair()
        assert detect_cfd_violations(result.relation, conflicting).is_clean()

    def test_interacting_cfds_cascade(self):
        schema = RelationSchema("r", [Attribute("a"), Attribute("b"), Attribute("c")])
        relation = Relation.from_dicts(schema, [
            {"a": "1", "b": "x", "c": "p"},
            {"a": "1", "b": "y", "c": "q"},
            {"a": "1", "b": "x", "c": "p"},
        ])
        cfds = [CFD.single("r", ["a"], ["b"]), CFD.single("r", ["b"], ["c"])]
        result = BatchRepair(relation, cfds).repair()
        assert detect_cfd_violations(result.relation, cfds).is_clean()

    def test_repair_relation_wrapper(self, customer):
        result = repair_relation(customer, CFDS)
        assert detect_cfd_violations(result.relation, CFDS).is_clean()

    values = st.sampled_from(["a", "b", "c"])
    rows = st.lists(st.tuples(values, values, values), min_size=0, max_size=25)

    @given(rows)
    @settings(max_examples=20, deadline=None)
    def test_repair_always_reaches_satisfaction(self, data):
        schema = RelationSchema("r", [Attribute("x"), Attribute("y"), Attribute("z")])
        relation = Relation.from_rows(schema, data)
        cfds = [CFD.single("r", ["x"], ["y"]),
                CFD.single("r", ["x"], ["z"], {"x": "a", "z": "c"})]
        result = BatchRepair(relation, cfds).repair()
        assert detect_cfd_violations(result.relation, cfds).is_clean()


class TestRepairQuality:
    def test_quality_on_generated_workload(self):
        generator = CustomerGenerator(seed=3)
        clean = generator.generate(300)
        cfds = generator.canonical_cfds()
        noise = inject_noise(clean, rate=0.03, attributes=["street", "city"], seed=5)
        result = BatchRepair(noise.dirty, cfds).repair()
        quality = evaluate_repair(clean, noise.dirty, result.relation)
        assert quality.errors > 0
        assert quality.recall > 0.5
        assert quality.precision > 0.5
        assert 0.0 <= quality.f1 <= 1.0

    def test_quality_perfect_when_nothing_to_do(self):
        generator = CustomerGenerator(seed=3)
        clean = generator.generate(50)
        quality = evaluate_repair(clean, clean.copy(), clean.copy())
        assert quality.precision == 1.0 and quality.recall == 1.0

    def test_schema_mismatch_rejected(self):
        generator = CustomerGenerator(seed=3)
        clean = generator.generate(10)
        other = Relation(RelationSchema("x", [Attribute("a")]))
        with pytest.raises(RepairError):
            evaluate_repair(clean, clean, other)


class TestIncRepair:
    def _workload(self, base_size=200, delta_size=20):
        generator = CustomerGenerator(seed=9)
        clean = generator.generate(base_size + delta_size)
        cfds = generator.canonical_cfds()
        noise = inject_noise(clean, rate=0.05, attributes=["street", "city"], seed=17)
        dirty = noise.dirty
        tids = dirty.tids()
        base_tids, delta_tids = tids[:base_size], tids[base_size:]
        # the base part is repaired up front (it plays the role of the clean DB)
        base_only = dirty.filter(lambda t: t.tid in set(base_tids), name="customer")
        repaired_base = BatchRepair(base_only, cfds).repair().relation
        combined = repaired_base.copy(name="customer")
        for tid in delta_tids:
            assert combined.insert(list(dirty.tuple(tid).values)) is not None
        return combined, cfds, clean

    def test_increpair_only_touches_delta(self):
        generator = CustomerGenerator(seed=9)
        clean = generator.generate(100)
        cfds = generator.canonical_cfds()
        base = BatchRepair(clean, cfds).repair().relation
        delta_tids = []
        delta_tids.append(base.insert_dict({
            "cc": "01", "ac": "908", "phn": "999", "name": "joe",
            "street": "elsewhere", "city": "nyc", "zip": "07974"}))
        before = {tid: base.tuple(tid).as_dict() for tid in base.tids() if tid not in delta_tids}
        result = IncRepair(base, cfds).repair_delta(delta_tids)
        for tid, row in before.items():
            assert base.tuple(tid).as_dict() == row
        assert all(change.tid in delta_tids for change in result.changes)

    def test_increpair_fixes_constant_violation(self):
        generator = CustomerGenerator(seed=9)
        clean = generator.generate(50)
        cfds = generator.canonical_cfds()
        base = BatchRepair(clean, cfds).repair().relation
        tid = base.insert_dict({
            "cc": "01", "ac": "908", "phn": "999", "name": "joe",
            "street": "mountain ave", "city": "boston", "zip": "07974"})
        IncRepair(base, cfds).repair_delta([tid])
        assert base.value(tid, "city") == "mh"

    def test_increpair_adopts_base_group_value(self):
        generator = CustomerGenerator(seed=9)
        clean = generator.generate(50)
        cfds = generator.canonical_cfds()
        base = BatchRepair(clean, cfds).repair().relation
        # find an existing UK zip and insert a delta tuple disagreeing on street
        uk_row = next(t for t in base if t["cc"] == "44")
        tid = base.insert_dict({
            "cc": "44", "ac": uk_row["ac"], "phn": "777", "name": "amy",
            "street": "wrong street", "city": uk_row["city"], "zip": uk_row["zip"]})
        IncRepair(base, cfds).repair_delta([tid])
        assert base.value(tid, "street") == uk_row["street"]

    def test_increpair_leaves_delta_clean(self):
        combined, cfds, _ = self._workload()
        delta_tids = combined.tids()[200:]
        result = IncRepair(combined, cfds).repair_delta(delta_tids)
        report = BatchCFDDetector(combined, cfds).detect()
        assert not (report.violating_tids() & set(delta_tids))
        assert result.converged
