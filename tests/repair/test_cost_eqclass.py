"""Tests for the repair cost model and the equivalence-class structure."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RepairError
from repro.relational.columns import NULL_CODE
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import NULL
from repro.repair.cost import CostModel
from repro.repair.eqclass import CodeEquivalenceClasses, EquivalenceClasses


class TestCostModel:
    def test_no_change_costs_nothing(self):
        model = CostModel()
        assert model.change_cost(0, "city", "edi", "edi") == 0.0

    def test_change_cost_uses_weight(self):
        model = CostModel()
        model.set_weight(0, "city", 2.0)
        base = CostModel().change_cost(0, "city", "edi", "ldn")
        assert model.change_cost(0, "city", "edi", "ldn") == pytest.approx(2 * base)

    def test_negative_weight_rejected(self):
        model = CostModel()
        with pytest.raises(ValueError):
            model.set_weight(0, "city", -1.0)
        with pytest.raises(ValueError):
            CostModel(default_weight=-0.1)

    def test_distance_is_normalized(self):
        model = CostModel()
        assert 0.0 <= model.distance("edinburgh", "x") <= 1.0
        assert model.distance(NULL, NULL) == 0.0
        assert model.distance("a", NULL) == 1.0

    def test_cheapest_target_prefers_majority(self):
        model = CostModel()
        cells = [(0, "city", "edi"), (1, "city", "edi"), (2, "city", "ldn")]
        target, cost = model.cheapest_target(cells)
        assert target == "edi"
        assert cost == pytest.approx(model.change_cost(2, "city", "ldn", "edi"))

    def test_cheapest_target_respects_weights(self):
        model = CostModel()
        model.set_weight(2, "city", 10.0)  # the 'ldn' cell is highly trusted
        cells = [(0, "city", "edi"), (1, "city", "edi"), (2, "city", "ldn")]
        target, _ = model.cheapest_target(cells)
        assert target == "ldn"

    def test_cheapest_target_with_candidates(self):
        model = CostModel()
        cells = [(0, "city", "edi")]
        target, _ = model.cheapest_target(cells, candidates=["mh"])
        assert target == "mh"

    def test_cheapest_target_empty_rejected(self):
        with pytest.raises(ValueError):
            CostModel().cheapest_target([])

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=20))
    def test_cheapest_target_is_optimal(self, values):
        model = CostModel()
        cells = [(i, "x", v) for i, v in enumerate(values)]
        target, cost = model.cheapest_target(cells)
        for candidate in set(values):
            assert cost <= model.target_cost(cells, candidate) + 1e-9


def _column(values, attribute="x"):
    """A dictionary-encoded column over one STRING attribute."""
    schema = RelationSchema("r", [Attribute(attribute)])
    relation = Relation.from_rows(schema, [[v] for v in values])
    return relation.columns.column(attribute)


class TestCodeLevelCost:
    def test_code_distance_matches_value_distance(self):
        model = CostModel()
        column = _column(["edi", "ldn", NULL])
        a, b = column.code_of("edi"), column.code_of("ldn")
        assert model.code_distance(column, a, b) == model.distance("edi", "ldn")
        assert model.code_distance(column, a, a) == 0.0
        assert model.code_distance(column, NULL_CODE, NULL_CODE) == 0.0
        assert model.code_distance(column, a, NULL_CODE) == model.distance("edi", NULL)

    def test_code_distance_is_memoised_per_column(self):
        calls = []

        def counting(left, right):
            calls.append((left, right))
            return 0.5

        model = CostModel(distance=counting)
        column = _column(["a", "b"])
        a, b = column.code_of("a"), column.code_of("b")
        assert model.code_distance(column, a, b) == 0.5
        assert model.code_distance(column, a, b) == 0.5
        assert len(calls) == 1  # second call hits the column's memo

    def test_custom_distances_do_not_share_memos(self):
        column = _column(["a", "b"])
        a, b = column.code_of("a"), column.code_of("b")
        first = CostModel(distance=lambda left, right: 0.25)
        second = CostModel(distance=lambda left, right: 0.75)
        assert first.code_distance(column, a, b) == 0.25
        assert second.code_distance(column, a, b) == 0.75

    def test_same_function_shares_one_memo(self):
        calls = []

        def shared(left, right):
            calls.append((left, right))
            return 0.5

        column = _column(["a", "b"])
        a, b = column.code_of("a"), column.code_of("b")
        assert CostModel(distance=shared).code_distance(column, a, b) == 0.5
        assert CostModel(distance=shared).code_distance(column, a, b) == 0.5
        assert len(calls) == 1  # second model reuses the first model's memo
        assert len(column._distances) == 1  # throwaway models do not grow the column

    def test_subclass_override_does_not_poison_default_memo(self):
        class Overridden(CostModel):
            def distance(self, old_value, new_value):
                return 0.9

        column = _column(["edi", "ldn"])
        a, b = column.code_of("edi"), column.code_of("ldn")
        assert Overridden().code_distance(column, a, b) == 0.9
        model = CostModel()
        assert model.code_distance(column, a, b) == model.distance("edi", "ldn")

    def test_memo_cleared_on_rebuild(self):
        model = CostModel(distance=lambda left, right: 0.5)
        column = _column(["a", "b"])
        a, b = column.code_of("a"), column.code_of("b")
        model.code_distance(column, a, b)
        cache = column.distance_cache(model._distance_key)
        assert cache
        column._reset()
        assert not cache  # cleared in place: held references stay valid

    def test_cheapest_target_code_agrees_with_value_face(self):
        model = CostModel()
        values = ["edi", "edi", "ldn", "mh", "ldn"]
        column = _column(values)
        cells = [(tid, "x", value) for tid, value in enumerate(values)]
        code_cells = [(tid, column.code_of(value)) for tid, value in enumerate(values)]
        target, cost = model.cheapest_target(cells)
        target_code, code_cost = model.cheapest_target_code("x", column, code_cells)
        assert column.value_of(target_code) == target
        assert code_cost == cost

    def test_cheapest_target_code_respects_weights(self):
        model = CostModel()
        model.set_weight(2, "x", 10.0)
        column = _column(["edi", "edi", "ldn"])
        cells = [(0, column.code_of("edi")), (1, column.code_of("edi")),
                 (2, column.code_of("ldn"))]
        target_code, _ = model.cheapest_target_code("x", column, cells)
        assert column.value_of(target_code) == "ldn"

    def test_cheapest_target_code_with_candidates(self):
        model = CostModel()
        column = _column(["edi", "mh"])
        cells = [(0, column.code_of("edi"))]
        target_code, _ = model.cheapest_target_code(
            "x", column, cells, candidates=[column.code_of("mh")])
        assert column.value_of(target_code) == "mh"

    def test_cheapest_target_code_empty_rejected(self):
        with pytest.raises(ValueError):
            CostModel().cheapest_target_code("x", _column(["a"]), [])

    @given(st.lists(st.sampled_from(["a", "b", "c", NULL]), min_size=1, max_size=20))
    def test_code_face_matches_value_face(self, values):
        model = CostModel()
        column = _column(values)
        cells = [(tid, "x", value) for tid, value in enumerate(values)]
        code_cells = [(tid, column.codes[tid]) for tid in range(len(values))]
        target, cost = model.cheapest_target(cells)
        target_code, code_cost = model.cheapest_target_code("x", column, code_cells)
        assert code_cost == cost
        assert str(column.value_of(target_code)) == str(target)


class TestCodeEquivalenceClasses:
    def test_cells_are_position_pairs(self):
        classes = CodeEquivalenceClasses()
        root = classes.add((0, 3))
        assert classes.find((0, 3)) == root
        assert classes.cells() == [(0, 3)]

    def test_pin_codes_and_conflict(self):
        classes = CodeEquivalenceClasses()
        classes.pin((0, 1), 7)
        assert classes.pinned_value((0, 1)) == 7
        with pytest.raises(RepairError):
            classes.pin((0, 1), 8)

    def test_pin_survives_union(self):
        classes = CodeEquivalenceClasses()
        classes.pin((0, 1), 7)
        classes.union((0, 1), (4, 1))
        assert classes.pinned_value((4, 1)) == 7

    def test_union_of_conflicting_codes_rejected(self):
        classes = CodeEquivalenceClasses()
        classes.pin((0, 1), 7)
        classes.pin((1, 1), 8)
        with pytest.raises(RepairError):
            classes.union((0, 1), (1, 1))

    def test_repin_same_code_allowed(self):
        classes = CodeEquivalenceClasses()
        classes.pin((0, 1), 7)
        classes.pin((0, 1), 7)
        assert classes.pinned_value((0, 1)) == 7


class TestEquivalenceClasses:
    def test_attribute_names_canonical_at_the_boundary(self):
        classes = EquivalenceClasses()
        classes.add((0, "CiTy"))
        assert classes.cells() == [(0, "city")]  # stored canonical
        classes.union((0, "CITY"), (1, "City"))
        assert classes.same_class((0, "city"), (1, "CITY"))
        assert len(classes) == 2  # no duplicate cells for case variants

    def test_add_and_find(self):
        classes = EquivalenceClasses()
        root = classes.add((0, "city"))
        assert classes.find((0, "CITY")) == root

    def test_union_merges(self):
        classes = EquivalenceClasses()
        classes.union((0, "city"), (1, "city"))
        assert classes.same_class((0, "city"), (1, "city"))
        assert not classes.same_class((0, "city"), (2, "city"))

    def test_union_is_transitive(self):
        classes = EquivalenceClasses()
        classes.union((0, "city"), (1, "city"))
        classes.union((1, "city"), (2, "city"))
        assert classes.same_class((0, "city"), (2, "city"))
        assert classes.class_count() == 1

    def test_pin_and_conflict(self):
        classes = EquivalenceClasses()
        classes.pin((0, "city"), "mh")
        assert classes.pinned_value((0, "city")) == "mh"
        with pytest.raises(RepairError):
            classes.pin((0, "city"), "nyc")

    def test_pin_survives_union(self):
        classes = EquivalenceClasses()
        classes.pin((0, "city"), "mh")
        classes.union((0, "city"), (1, "city"))
        assert classes.pinned_value((1, "city")) == "mh"

    def test_union_of_conflicting_pins_rejected(self):
        classes = EquivalenceClasses()
        classes.pin((0, "city"), "mh")
        classes.pin((1, "city"), "nyc")
        with pytest.raises(RepairError):
            classes.union((0, "city"), (1, "city"))

    def test_members_and_classes(self):
        classes = EquivalenceClasses()
        classes.union((0, "city"), (1, "city"))
        classes.add((2, "street"))
        assert len(classes.members((0, "city"))) == 2
        assert classes.class_count() == 2
        assert len(classes) == 3

    @given(st.lists(st.tuples(st.integers(0, 10), st.integers(0, 10)), max_size=40))
    def test_union_find_invariant(self, pairs):
        classes = EquivalenceClasses()
        for a, b in pairs:
            classes.union((a, "x"), (b, "x"))
        # transitivity: representatives are consistent
        for a, b in pairs:
            assert classes.same_class((a, "x"), (b, "x"))
