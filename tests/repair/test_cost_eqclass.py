"""Tests for the repair cost model and the equivalence-class structure."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RepairError
from repro.relational.types import NULL
from repro.repair.cost import CostModel
from repro.repair.eqclass import EquivalenceClasses


class TestCostModel:
    def test_no_change_costs_nothing(self):
        model = CostModel()
        assert model.change_cost(0, "city", "edi", "edi") == 0.0

    def test_change_cost_uses_weight(self):
        model = CostModel()
        model.set_weight(0, "city", 2.0)
        base = CostModel().change_cost(0, "city", "edi", "ldn")
        assert model.change_cost(0, "city", "edi", "ldn") == pytest.approx(2 * base)

    def test_negative_weight_rejected(self):
        model = CostModel()
        with pytest.raises(ValueError):
            model.set_weight(0, "city", -1.0)
        with pytest.raises(ValueError):
            CostModel(default_weight=-0.1)

    def test_distance_is_normalized(self):
        model = CostModel()
        assert 0.0 <= model.distance("edinburgh", "x") <= 1.0
        assert model.distance(NULL, NULL) == 0.0
        assert model.distance("a", NULL) == 1.0

    def test_cheapest_target_prefers_majority(self):
        model = CostModel()
        cells = [(0, "city", "edi"), (1, "city", "edi"), (2, "city", "ldn")]
        target, cost = model.cheapest_target(cells)
        assert target == "edi"
        assert cost == pytest.approx(model.change_cost(2, "city", "ldn", "edi"))

    def test_cheapest_target_respects_weights(self):
        model = CostModel()
        model.set_weight(2, "city", 10.0)  # the 'ldn' cell is highly trusted
        cells = [(0, "city", "edi"), (1, "city", "edi"), (2, "city", "ldn")]
        target, _ = model.cheapest_target(cells)
        assert target == "ldn"

    def test_cheapest_target_with_candidates(self):
        model = CostModel()
        cells = [(0, "city", "edi")]
        target, _ = model.cheapest_target(cells, candidates=["mh"])
        assert target == "mh"

    def test_cheapest_target_empty_rejected(self):
        with pytest.raises(ValueError):
            CostModel().cheapest_target([])

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=20))
    def test_cheapest_target_is_optimal(self, values):
        model = CostModel()
        cells = [(i, "x", v) for i, v in enumerate(values)]
        target, cost = model.cheapest_target(cells)
        for candidate in set(values):
            assert cost <= model.target_cost(cells, candidate) + 1e-9


class TestEquivalenceClasses:
    def test_add_and_find(self):
        classes = EquivalenceClasses()
        root = classes.add((0, "city"))
        assert classes.find((0, "CITY")) == root

    def test_union_merges(self):
        classes = EquivalenceClasses()
        classes.union((0, "city"), (1, "city"))
        assert classes.same_class((0, "city"), (1, "city"))
        assert not classes.same_class((0, "city"), (2, "city"))

    def test_union_is_transitive(self):
        classes = EquivalenceClasses()
        classes.union((0, "city"), (1, "city"))
        classes.union((1, "city"), (2, "city"))
        assert classes.same_class((0, "city"), (2, "city"))
        assert classes.class_count() == 1

    def test_pin_and_conflict(self):
        classes = EquivalenceClasses()
        classes.pin((0, "city"), "mh")
        assert classes.pinned_value((0, "city")) == "mh"
        with pytest.raises(RepairError):
            classes.pin((0, "city"), "nyc")

    def test_pin_survives_union(self):
        classes = EquivalenceClasses()
        classes.pin((0, "city"), "mh")
        classes.union((0, "city"), (1, "city"))
        assert classes.pinned_value((1, "city")) == "mh"

    def test_union_of_conflicting_pins_rejected(self):
        classes = EquivalenceClasses()
        classes.pin((0, "city"), "mh")
        classes.pin((1, "city"), "nyc")
        with pytest.raises(RepairError):
            classes.union((0, "city"), (1, "city"))

    def test_members_and_classes(self):
        classes = EquivalenceClasses()
        classes.union((0, "city"), (1, "city"))
        classes.add((2, "street"))
        assert len(classes.members((0, "city"))) == 2
        assert classes.class_count() == 2
        assert len(classes) == 3

    @given(st.lists(st.tuples(st.integers(0, 10), st.integers(0, 10)), max_size=40))
    def test_union_find_invariant(self, pairs):
        classes = EquivalenceClasses()
        for a, b in pairs:
            classes.union((a, "x"), (b, "x"))
        # transitivity: representatives are consistent
        for a, b in pairs:
            assert classes.same_class((a, "x"), (b, "x"))
