"""Randomized parity: code-path repairs are byte-identical to the string path.

``BatchRepair``/``IncRepair`` run on dictionary codes by default;
``use_columns=False`` keeps the original row/string implementation.  These
tests pin down that the two produce *identical* :class:`Repair` results —
same ``CellChange`` list (values included), same cost, same pass count,
same convergence flag — across randomized dirty E1-style workloads,
interacting CFDs, weighted cost models and every execution engine.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.cfd import CFD
from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.detection.cfd_detect import detect_cfd_violations
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.repair.batch_repair import BatchRepair, Repair
from repro.repair.cost import CostModel
from repro.repair.inc_repair import IncRepair


def assert_repairs_identical(code: Repair, strings: Repair) -> None:
    assert code.changes == strings.changes
    assert code.cost == strings.cost
    assert code.passes == strings.passes
    assert code.converged == strings.converged


def _customer_workload(size: int, rate: float = 0.06, seed: int = 11):
    generator = CustomerGenerator(seed=seed)
    clean = generator.generate(size)
    dirty = inject_noise(clean, rate=rate,
                         attributes=["street", "city"], seed=seed + 1).dirty
    return dirty, generator.canonical_cfds()


class TestBatchRepairParity:
    def test_customer_workload(self):
        dirty, cfds = _customer_workload(300)
        code = BatchRepair(dirty, cfds, use_columns=True).repair()
        strings = BatchRepair(dirty, cfds, use_columns=False).repair()
        assert code.changes  # the workload is actually dirty
        assert_repairs_identical(code, strings)
        assert detect_cfd_violations(code.relation, cfds).is_clean()

    def test_arbitrary_ordering(self):
        dirty, cfds = _customer_workload(200, seed=23)
        code = BatchRepair(dirty, cfds, use_columns=True, ordering="arbitrary").repair()
        strings = BatchRepair(dirty, cfds, use_columns=False, ordering="arbitrary").repair()
        assert_repairs_identical(code, strings)

    def test_weighted_cost_model(self):
        dirty, cfds = _customer_workload(200, seed=5)
        weights = {(tid, "street"): 8.0 for tid in list(dirty.tids())[::3]}
        models = []
        for _ in range(2):
            model = CostModel()
            model.set_weights(weights)
            models.append(model)
        code = BatchRepair(dirty, cfds, cost_model=models[0], use_columns=True).repair()
        strings = BatchRepair(dirty, cfds, cost_model=models[1], use_columns=False).repair()
        assert_repairs_identical(code, strings)

    @pytest.mark.parametrize("engine,workers", [("serial", None), ("parallel", 2)])
    def test_chunked_engines(self, engine, workers):
        dirty, cfds = _customer_workload(250, seed=31)
        baseline = BatchRepair(dirty, cfds, use_columns=False).repair()
        chunked = BatchRepair(dirty, cfds, use_columns=True,
                              engine=engine, workers=workers).repair()
        assert_repairs_identical(chunked, baseline)

    def test_parallel_engine_across_real_processes(self, monkeypatch):
        # force the multiprocessing backend to actually cross process
        # boundaries on a small workload (every pass re-broadcasts state)
        monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "0")
        dirty, cfds = _customer_workload(120, seed=43)
        baseline = BatchRepair(dirty, cfds, use_columns=False).repair()
        chunked = BatchRepair(dirty, cfds, use_columns=True,
                              engine="parallel", workers=2).repair()
        assert_repairs_identical(chunked, baseline)

    def test_conflicting_constants_break_lhs_identically(self):
        schema = RelationSchema("r", [Attribute("a"), Attribute("b")])
        relation = Relation.from_dicts(schema, [{"a": "k", "b": "x"},
                                                {"a": "k", "b": "y"}])
        conflicting = [
            CFD.single("r", ["a"], ["b"], {"a": "k", "b": "v1"}),
            CFD.single("r", ["a"], ["b"], {"a": "k", "b": "v2"}),
        ]
        code = BatchRepair(relation, conflicting, use_columns=True).repair()
        strings = BatchRepair(relation, conflicting, use_columns=False).repair()
        assert_repairs_identical(code, strings)
        assert detect_cfd_violations(code.relation, conflicting).is_clean()

    values = st.sampled_from(["a", "b", "c"])
    rows = st.lists(st.tuples(values, values, values), min_size=0, max_size=25)

    @given(rows)
    @settings(max_examples=25, deadline=None)
    def test_randomized_interacting_cfds(self, data):
        # cascading CFDs ([x]->[y] feeds [y]->[z]) plus a constant pattern:
        # the shape that exercises pins, group equalization and multi-pass
        # fixpoints together
        schema = RelationSchema("r", [Attribute("x"), Attribute("y"), Attribute("z")])
        relation = Relation.from_rows(schema, data)
        cfds = [CFD.single("r", ["x"], ["y"]),
                CFD.single("r", ["y"], ["z"]),
                CFD.single("r", ["x"], ["z"], {"x": "a", "z": "c"})]
        code = BatchRepair(relation, cfds, use_columns=True).repair()
        strings = BatchRepair(relation, cfds, use_columns=False).repair()
        assert_repairs_identical(code, strings)

    @given(rows)
    @settings(max_examples=15, deadline=None)
    def test_randomized_with_serial_engine(self, data):
        schema = RelationSchema("r", [Attribute("x"), Attribute("y"), Attribute("z")])
        relation = Relation.from_rows(schema, data)
        cfds = [CFD.single("r", ["x"], ["y"]),
                CFD.single("r", ["x"], ["z"], {"x": "a", "z": "c"})]
        chunked = BatchRepair(relation, cfds, use_columns=True, engine="serial").repair()
        strings = BatchRepair(relation, cfds, use_columns=False).repair()
        assert_repairs_identical(chunked, strings)


class TestIncRepairParity:
    def _delta_workload(self, base_size=150, delta_size=25, seed=9):
        generator = CustomerGenerator(seed=seed)
        clean = generator.generate(base_size + delta_size)
        cfds = generator.canonical_cfds()
        dirty = inject_noise(clean, rate=0.08,
                             attributes=["street", "city"], seed=seed + 1).dirty
        tids = dirty.tids()
        base_tids = set(tids[:base_size])
        base_only = dirty.filter(lambda t: t.tid in base_tids, name="customer")
        repaired_base = BatchRepair(base_only, cfds).repair().relation
        combined = repaired_base.copy(name="customer")
        delta_tids = [combined.insert(list(dirty.tuple(tid).values))
                      for tid in tids[base_size:]]
        return combined, cfds, delta_tids

    def test_delta_repair_identical(self):
        combined, cfds, delta_tids = self._delta_workload()
        code_relation = combined.copy(name=combined.name)
        string_relation = combined.copy(name=combined.name)
        code = IncRepair(code_relation, cfds, use_columns=True).repair_delta(delta_tids)
        strings = IncRepair(string_relation, cfds,
                            use_columns=False).repair_delta(delta_tids)
        assert code.changes  # the delta is actually dirty
        assert_repairs_identical(code, strings)
        assert code_relation.to_dicts() == string_relation.to_dicts()

    def test_delta_group_equalization_identical(self):
        # several delta tuples share an unseen LHS key and disagree: the
        # cost-minimal equalization must pick the same target on both paths
        combined, cfds, _ = self._delta_workload(base_size=60, delta_size=0, seed=17)
        fresh = [{"cc": "44", "ac": "999", "phn": str(7000 + i), "name": f"n{i}",
                  "street": street, "city": "edi", "zip": "ZZ9"}
                 for i, street in enumerate(["high st", "high st", "low st"])]
        code_relation = combined.copy(name=combined.name)
        string_relation = combined.copy(name=combined.name)
        code_tids = [code_relation.insert_dict(row) for row in fresh]
        string_tids = [string_relation.insert_dict(row) for row in fresh]
        assert code_tids == string_tids
        code = IncRepair(code_relation, cfds, use_columns=True).repair_delta(code_tids)
        strings = IncRepair(string_relation, cfds,
                            use_columns=False).repair_delta(string_tids)
        assert_repairs_identical(code, strings)

    @pytest.mark.parametrize("engine,workers", [("serial", None), ("parallel", 2)])
    def test_engines_identical(self, engine, workers):
        combined, cfds, delta_tids = self._delta_workload(seed=29)
        code_relation = combined.copy(name=combined.name)
        string_relation = combined.copy(name=combined.name)
        code = IncRepair(code_relation, cfds, use_columns=True,
                         engine=engine, workers=workers).repair_delta(delta_tids)
        strings = IncRepair(string_relation, cfds,
                            use_columns=False).repair_delta(delta_tids)
        assert_repairs_identical(code, strings)
