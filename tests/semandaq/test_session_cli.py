"""Tests for the Semandaq session workflow and the CLI front end."""

import pytest

from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.detection.cfd_detect import detect_cfd_violations
from repro.errors import ReproError
from repro.relational.csvio import read_csv, relation_to_csv
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.semandaq.cli import main as semandaq_main
from repro.semandaq.session import SemandaqSession

CFD_BLOCK = """
# semantics of the customer relation
customer([cc='44', zip] -> [street])
customer([cc='44', zip] -> [city])
customer([cc='01', ac='908'] -> [city='mh'])
"""

ROWS = [
    {"cc": "44", "ac": "131", "phn": "1111", "city": "edi", "zip": "EH8", "street": "mayfield"},
    {"cc": "44", "ac": "131", "phn": "2222", "city": "edi", "zip": "EH8", "street": "mayfield"},
    {"cc": "44", "ac": "131", "phn": "3333", "city": "ldn", "zip": "EH8", "street": "crichton"},
    {"cc": "01", "ac": "908", "phn": "4444", "city": "nyc", "zip": "07974", "street": "mtn ave"},
]

SCHEMA = RelationSchema("customer", [
    Attribute("cc"), Attribute("ac"), Attribute("phn"),
    Attribute("city"), Attribute("zip"), Attribute("street"),
])


@pytest.fixture
def session():
    relation = Relation.from_dicts(SCHEMA, ROWS)
    session = SemandaqSession(relation)
    session.register_cfds(CFD_BLOCK)
    return session


class TestSemandaqSession:
    def test_register_from_block(self, session):
        assert len(session.cfds) == 3

    def test_detect_and_report(self, session):
        report = session.detect()
        assert not report.is_clean()
        text = session.report()
        assert "violations" in text and "customer" in text

    def test_consistency_check(self, session):
        analysis = session.check_consistency()
        assert analysis["satisfiable"] and analysis["conflicts"] == []

    def test_detect_without_constraints_rejected(self):
        relation = Relation.from_dicts(SCHEMA, ROWS)
        with pytest.raises(ReproError):
            SemandaqSession(relation).detect()

    def test_propose_repair_does_not_modify_data(self, session):
        before = session.database.relation("customer").to_dicts()
        repair = session.propose_repair("customer")
        assert repair.changes
        assert session.database.relation("customer").to_dicts() == before

    def test_apply_repair_cleans_relation(self, session):
        session.apply_repair("customer")
        relation = session.database.relation("customer")
        assert detect_cfd_violations(relation, session.cfds).is_clean()

    def test_confirm_cell_steers_repair(self, session):
        # the user asserts that 'crichton' (tuple 2) is the correct street
        session.confirm_cell(2, "street", "customer")
        session.confirm_cell(2, "city", "customer")
        session.apply_repair("customer")
        relation = session.database.relation("customer")
        assert relation.value(2, "street") == "crichton"
        assert relation.value(0, "street") == "crichton"

    def test_override_cell_locks_user_value(self, session):
        session.override_cell(3, "city", "mh", "customer")
        assert ("customer", 3, "city") in session.locked_cells()
        session.apply_repair("customer")
        assert session.database.relation("customer").value(3, "city") == "mh"

    def test_resolve_relation_requires_name_when_ambiguous(self):
        database = Database()
        database.add(Relation.from_dicts(SCHEMA, ROWS))
        database.add(Relation(SCHEMA.renamed_relation("backup")))
        session = SemandaqSession(database)
        session.register_cfds(CFD_BLOCK)
        with pytest.raises(ReproError):
            session.propose_repair()

    def test_cind_registration(self):
        database = Database()
        cd = RelationSchema("cd", [Attribute("album"), Attribute("price"), Attribute("genre")])
        book = RelationSchema("book", [Attribute("title"), Attribute("price"), Attribute("format")])
        database.create_from_dicts(cd, [{"album": "x", "price": "9", "genre": "a-book"}])
        database.create_from_dicts(book, [])
        session = SemandaqSession(database)
        session.register_cinds(
            "cd(album, price; genre='a-book') SUBSET book(title, price; format='audio')")
        report = session.detect()
        assert len(report.cind_violations()) == 1

    def test_end_to_end_on_generated_data(self):
        generator = CustomerGenerator(seed=19)
        clean = generator.generate(200)
        dirty = inject_noise(clean, rate=0.04, attributes=["street", "city"], seed=2).dirty
        session = SemandaqSession(dirty)
        session.register_cfds(generator.canonical_cfds())
        assert not session.detect().is_clean()
        session.apply_repair("customer")
        assert detect_cfd_violations(
            session.database.relation("customer"), generator.canonical_cfds()).is_clean()

    def test_engine_knob_reaches_repair(self):
        # a session created with engine= routes repair passes through the
        # chunked engine; the proposed repair is identical to the default
        generator = CustomerGenerator(seed=19)
        clean = generator.generate(150)
        dirty = inject_noise(clean, rate=0.05, attributes=["street", "city"], seed=3).dirty
        baseline = SemandaqSession(dirty.copy(name="customer"))
        chunked = SemandaqSession(dirty.copy(name="customer"), engine="serial")
        for session in (baseline, chunked):
            session.register_cfds(generator.canonical_cfds())
        expected = baseline.propose_repair("customer")
        proposed = chunked.propose_repair("customer")
        assert proposed.changes == expected.changes
        assert proposed.cost == expected.cost
        assert proposed.passes == expected.passes


class TestSessionDiscovery:
    def test_discover_cfds(self):
        relation = CustomerGenerator(seed=3).generate(120)
        session = SemandaqSession(relation)
        discovered = session.discover_cfds(min_support=5, max_lhs_size=2)
        assert discovered
        assert session.cfds == []  # not registered by default

    def test_discover_and_register(self):
        relation = CustomerGenerator(seed=3).generate(120)
        session = SemandaqSession(relation)
        discovered = session.discover_cfds(min_support=5, max_lhs_size=2,
                                           constant_only=True, register=True)
        assert [repr(c) for c in session.cfds] == [repr(c) for c in discovered]
        report = session.detect()  # everything discovered holds on the data
        assert report.is_clean()

    def test_session_engine_matches_sequential_discovery(self):
        relation = CustomerGenerator(seed=3).generate(120)
        sequential = SemandaqSession(relation).discover_cfds(min_support=5)
        chunked = SemandaqSession(relation, engine="serial").discover_cfds(min_support=5)
        assert [repr(c) for c in chunked] == [repr(c) for c in sequential]


class TestSemandaqCLI:
    def _write_inputs(self, tmp_path):
        relation = Relation.from_dicts(SCHEMA, ROWS)
        data_path = tmp_path / "customer.csv"
        relation_to_csv(relation, data_path)
        constraints_path = tmp_path / "cfds.txt"
        constraints_path.write_text(CFD_BLOCK, encoding="utf-8")
        return data_path, constraints_path

    def test_detect_only(self, tmp_path, capsys):
        data_path, constraints_path = self._write_inputs(tmp_path)
        exit_code = semandaq_main([str(data_path), str(constraints_path)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "violations" in captured

    def test_detect_and_repair(self, tmp_path, capsys):
        data_path, constraints_path = self._write_inputs(tmp_path)
        output_path = tmp_path / "repaired.csv"
        exit_code = semandaq_main([str(data_path), str(constraints_path),
                                   "--repair", str(output_path)])
        assert exit_code == 0
        assert output_path.exists()
        repaired = read_csv(output_path, "customer")
        session = SemandaqSession(repaired)
        cfds = session.register_cfds(CFD_BLOCK)
        assert detect_cfd_violations(repaired, cfds).is_clean()

    def test_discover_without_constraints_file(self, tmp_path, capsys):
        relation = CustomerGenerator(seed=3).generate(120)
        data_path = tmp_path / "customer.csv"
        relation_to_csv(relation, data_path)
        exit_code = semandaq_main([str(data_path), "--discover",
                                   "--min-support", "5", "--engine", "serial"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "discovered" in captured and "CFD(s)" in captured

    def test_missing_constraints_without_discover_rejected(self, tmp_path):
        relation = Relation.from_dicts(SCHEMA, ROWS)
        data_path = tmp_path / "customer.csv"
        relation_to_csv(relation, data_path)
        with pytest.raises(SystemExit):
            semandaq_main([str(data_path)])


class TestSessionSQL:
    def test_sql_runs_through_the_session(self, session):
        result = session.sql(
            "SELECT zip, COUNT(*) AS n FROM customer GROUP BY zip ORDER BY zip")
        assert [(t["zip"], t["n"]) for t in result] == [("07974", 1), ("EH8", 3)]

    def test_sql_result_name(self, session):
        result = session.sql("SELECT phn FROM customer", result_name="phones")
        assert result.schema.name == "phones"

    def test_sql_engine_is_cached(self, session):
        session.sql("SELECT phn FROM customer")
        first = session._sql_engine
        session.sql("SELECT phn FROM customer")
        assert session._sql_engine is first

    def test_sql_honours_engine_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "0")
        relation = CustomerGenerator(seed=11).generate(60)
        sequential = SemandaqSession(relation.copy())
        parallel = SemandaqSession(relation.copy(), engine="parallel", workers=2)
        query = ("SELECT city, COUNT(*) AS n, MIN(zip) AS z FROM customer "
                 "WHERE cc >= '0' GROUP BY city ORDER BY city")
        expected = [t.values for t in sequential.sql(query)]
        assert [t.values for t in parallel.sql(query)] == expected
        assert parallel._sql_engine.last_plan == "code"

    def test_sql_sees_repairs(self, session):
        before = session.sql(
            "SELECT COUNT(DISTINCT street) AS s FROM customer WHERE zip = 'EH8'")
        assert before.tuples()[0]["s"] == 2
        session.apply_repair("customer")
        after = session.sql(
            "SELECT COUNT(DISTINCT street) AS s FROM customer WHERE zip = 'EH8'")
        assert after.tuples()[0]["s"] == 1


class TestCLISql:
    def _data(self, tmp_path):
        relation = Relation.from_dicts(SCHEMA, ROWS)
        data_path = tmp_path / "customer.csv"
        relation_to_csv(relation, data_path)
        return data_path

    def test_sql_without_constraints(self, tmp_path, capsys):
        data_path = self._data(tmp_path)
        exit_code = semandaq_main([
            str(data_path), "--sql",
            "SELECT zip, COUNT(*) AS n FROM customer GROUP BY zip ORDER BY zip"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "EH8" in captured and "(2 row(s))" in captured
        assert "violations" not in captured  # no detection without constraints

    def test_sql_with_constraints_still_detects(self, tmp_path, capsys):
        data_path = self._data(tmp_path)
        constraints_path = tmp_path / "cfds.txt"
        constraints_path.write_text(CFD_BLOCK, encoding="utf-8")
        exit_code = semandaq_main([
            str(data_path), str(constraints_path),
            "--sql", "SELECT phn FROM customer WHERE city = 'edi'"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "(2 row(s))" in captured and "violations" in captured

    def test_sql_with_repair_but_no_constraints_rejected(self, tmp_path):
        data_path = self._data(tmp_path)
        with pytest.raises(SystemExit):
            semandaq_main([str(data_path), "--sql", "SELECT phn FROM customer",
                           "--repair", str(tmp_path / "out.csv")])
        assert not (tmp_path / "out.csv").exists()

    def test_sql_with_engine_knobs(self, tmp_path, capsys):
        data_path = self._data(tmp_path)
        exit_code = semandaq_main([
            str(data_path), "--engine", "serial",
            "--sql", "SELECT COUNT(*) AS n FROM customer WHERE zip >= 'A'"])
        captured = capsys.readouterr().out
        assert exit_code == 0 and "(1 row(s))" in captured
