"""Smoke tests: every example script must run to completion.

The examples are part of the public deliverable; these tests execute each
one in a subprocess (so they exercise exactly what a user would run) and
check for a zero exit status and the expected headline output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"


def _run(script_name: str) -> subprocess.CompletedProcess:
    env = {"PYTHONPATH": str(SRC_DIR)}
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script_name)],
        capture_output=True, text=True, timeout=600, env=env, check=False)


@pytest.mark.parametrize("script, expected_fragments", [
    ("quickstart.py", ["violations", "repaired relation", "Semandaq session"]),
    ("customer_cleaning.py", ["repair quality", "violations remaining after repair"]),
    ("fraud_matching.py", ["derived relative candidate keys", "derived-RCK matching"]),
    ("discovery_profiling.py", ["minimal FDs", "constant CFDs", "injected errors"]),
])
def test_example_runs_cleanly(script, expected_fragments):
    result = _run(script)
    assert result.returncode == 0, result.stderr
    for fragment in expected_fragments:
        assert fragment in result.stdout, f"missing {fragment!r} in output of {script}"
